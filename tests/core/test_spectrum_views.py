"""Tests for the LSA spectrum app, PRB caps, and the RIB views."""

import pytest

from repro.core.apps.spectrum import (
    IncumbentWindow,
    LsaAgreement,
    LsaSpectrumApp,
)
from repro.core.controller.views import (
    cell_loads,
    congested_cells,
    least_loaded_cell,
    ue_qualities,
)
from repro.core.protocol.messages import ReportType
from repro.lte.cell import Cell, CellConfig
from repro.lte.phy.channel import FixedCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource, SaturatingSource


class TestPrbCap:
    def test_cap_limits_usable_prbs(self):
        cell = Cell(CellConfig(cell_id=10))
        assert cell.n_prb == 50
        cell.set_prb_cap(25)
        assert cell.n_prb == 25
        cell.set_prb_cap(None)
        assert cell.n_prb == 50

    def test_cap_beyond_carrier_is_clamped(self):
        cell = Cell(CellConfig(cell_id=10))
        cell.set_prb_cap(80)
        assert cell.n_prb == 50

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Cell(CellConfig(cell_id=10)).set_prb_cap(-1)

    def test_cap_halves_saturated_throughput(self):
        results = {}
        for cap in (None, 25):
            sim = Simulation()
            enb = sim.add_enb()
            if cap is not None:
                enb.cell().set_prb_cap(cap)
            ue = Ue("001", FixedCqi(12))
            sim.add_ue(enb, ue)
            sim.add_downlink_traffic(enb, ue, SaturatingSource(start_tti=20))
            sim.run(2000)
            results[cap] = ue.throughput_mbps(sim.now)
        assert results[25] == pytest.approx(results[None] / 2, rel=0.1)


class TestIncumbentWindow:
    def test_activity(self):
        w = IncumbentWindow(100, 200)
        assert not w.active(99)
        assert w.active(100)
        assert w.active(199)
        assert not w.active(200)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            IncumbentWindow(100, 100)


class TestLsaApp:
    def build(self, windows):
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        agent = sim.add_agent(enb)
        ue = Ue("001", FixedCqi(12))
        sim.add_ue(enb, ue)
        sim.add_downlink_traffic(enb, ue, SaturatingSource(start_tti=20))
        app = LsaSpectrumApp([LsaAgreement(
            agent_id=agent.agent_id, cell_id=enb.cell().cell_id,
            licensed_prbs=25, windows=tuple(windows))])
        sim.master.add_app(app)
        return sim, enb, ue, app

    def test_vacate_and_restore(self):
        sim, enb, ue, app = self.build([IncumbentWindow(1000, 2000)])
        sim.run(500)
        assert enb.cell().n_prb == 50
        sim.run(1000)  # now inside the incumbent window
        assert enb.cell().n_prb == 25
        sim.run(1500)  # past the window
        assert enb.cell().n_prb == 50
        assert app.vacate_commands == 1
        assert app.restore_commands == 1

    def test_throughput_tracks_spectrum(self):
        sim, enb, ue, app = self.build([IncumbentWindow(2000, 4000)])
        sim.run(2000)
        full_rate = ue.throughput_mbps(sim.now)
        sim.run(2000)
        shared_rate = ue.throughput_mbps(sim.now)
        sim.run(2000)
        restored_rate = ue.throughput_mbps(sim.now)
        assert shared_rate == pytest.approx(full_rate / 2, rel=0.15)
        assert restored_rate == pytest.approx(full_rate, rel=0.1)

    def test_notice_sends_commands_early(self):
        sim, enb, ue, app = self.build([IncumbentWindow(1000, 2000)])
        app.notice_ttis = 50
        sim.run(960)
        assert app.current_cap(1, enb.cell().cell_id) == 25

    def test_invalid_notice(self):
        with pytest.raises(ValueError):
            LsaSpectrumApp([], notice_ttis=-1)


class TestRibViews:
    def build_deployment(self, n_ues=3, cqi=12, load_mbps=30.0):
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        agent = sim.add_agent(enb)
        ues = []
        for i in range(n_ues):
            ue = Ue(f"00{i}", FixedCqi(cqi))
            ue.neighbor_channels = {99: FixedCqi(min(15, cqi + 3))}
            sim.add_ue(enb, ue)
            sim.add_downlink_traffic(
                enb, ue, CbrSource(load_mbps / n_ues, start_tti=30))
            ues.append(ue)
        sim.master.northbound.request_stats(
            agent.agent_id, report_type=ReportType.PERIODIC, period_ttis=5)
        return sim, enb, agent, ues

    def test_cell_loads(self):
        sim, enb, agent, ues = self.build_deployment()
        sim.run(1000)
        loads = cell_loads(sim.master.rib)
        assert len(loads) == 1
        load = loads[0]
        assert load.connected_ues == 3
        assert load.mean_cqi == pytest.approx(12.0)
        assert 0.0 <= load.dl_prb_utilization <= 1.0

    def test_congestion_detection(self):
        # Offered 30 Mb/s over a ~17.5 Mb/s cell: saturated + backlog.
        sim, enb, agent, ues = self.build_deployment(load_mbps=30.0)
        sim.run(2000)
        congested = congested_cells(sim.master.rib)
        assert len(congested) == 1
        # Lightly loaded cell is not congested.
        sim2, enb2, agent2, _ = self.build_deployment(load_mbps=2.0)
        sim2.run(2000)
        assert congested_cells(sim2.master.rib) == []

    def test_ue_qualities_and_handover_candidates(self):
        sim, enb, agent, ues = self.build_deployment(cqi=8)
        sim.run(1000)
        qualities = ue_qualities(sim.master.rib)
        assert len(qualities) == 3
        q = qualities[0]
        assert q.cqi == 8
        assert q.estimated_capacity_mbps == pytest.approx(
            capacity_mbps(8, 50))
        assert q.best_neighbor == (99, 11)
        assert q.handover_candidate

    def test_least_loaded_cell(self):
        sim = Simulation(with_master=True)
        enb_a = sim.add_enb(1)
        enb_b = sim.add_enb(2)
        sim.add_agent(enb_a)
        sim.add_agent(enb_b)
        for i in range(3):
            ue = Ue(f"a{i}", FixedCqi(10))
            sim.add_ue(enb_a, ue)
        ue_b = Ue("b0", FixedCqi(10))
        sim.add_ue(enb_b, ue_b)
        sim.run(300)
        best = least_loaded_cell(sim.master.rib)
        assert best is not None
        assert best.agent_id == 2

    def test_views_on_empty_rib(self):
        sim = Simulation(with_master=True)
        sim.run(5)
        assert cell_loads(sim.master.rib) == []
        assert ue_qualities(sim.master.rib) == []
        assert least_loaded_cell(sim.master.rib) is None
