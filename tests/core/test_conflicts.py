"""Tests for the application conflict-resolution mechanism (Sec 7.3)."""

import pytest

from repro.core.apps.base import App
from repro.core.controller.conflicts import (
    ConflictOutcome,
    ConflictResolver,
)
from repro.core.protocol.messages import DciSpec
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource


def dci(rnti, n_prb=10, cqi=12):
    return DciSpec(rnti=rnti, n_prb=n_prb, cqi_used=cqi)


class TestResolverUnit:
    def test_first_command_allowed(self):
        r = ConflictResolver()
        outcome, decision = r.admit(1, 10, 100, [dci(70)], n_prb_limit=50,
                                    priority=5, now=90)
        assert outcome is ConflictOutcome.ALLOWED
        assert decision == [dci(70)]

    def test_disjoint_commands_merged(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 20)], n_prb_limit=50, priority=5,
                now=90)
        outcome, decision = r.admit(1, 10, 100, [dci(71, 20)],
                                    n_prb_limit=50, priority=1, now=90)
        assert outcome is ConflictOutcome.MERGED
        assert {d.rnti for d in decision} == {70, 71}

    def test_same_rnti_conflict_denied_for_lower_priority(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70)], n_prb_limit=50, priority=5, now=90)
        outcome, decision = r.admit(1, 10, 100, [dci(70)], n_prb_limit=50,
                                    priority=5, now=90)
        assert outcome is ConflictOutcome.DENIED
        assert decision == []
        assert r.counters.denied == 1

    def test_prb_oversubscription_denied(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 40)], n_prb_limit=50, priority=5,
                now=90)
        outcome, _ = r.admit(1, 10, 100, [dci(71, 20)], n_prb_limit=50,
                             priority=5, now=90)
        assert outcome is ConflictOutcome.DENIED

    def test_higher_priority_replaces(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 50)], n_prb_limit=50, priority=5,
                now=90)
        outcome, decision = r.admit(1, 10, 100, [dci(71, 50)],
                                    n_prb_limit=50, priority=9, now=90)
        assert outcome is ConflictOutcome.REPLACED
        assert decision == [dci(71, 50)]

    def test_different_targets_do_not_conflict(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 50)], n_prb_limit=50, priority=5,
                now=90)
        outcome, _ = r.admit(1, 10, 101, [dci(70, 50)], n_prb_limit=50,
                             priority=5, now=90)
        assert outcome is ConflictOutcome.ALLOWED

    def test_different_cells_do_not_conflict(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 50)], n_prb_limit=50, priority=5,
                now=90)
        outcome, _ = r.admit(1, 11, 100, [dci(70, 50)], n_prb_limit=50,
                             priority=5, now=90)
        assert outcome is ConflictOutcome.ALLOWED

    def test_gc_forgets_old_targets(self):
        r = ConflictResolver(retention_ttis=16)
        r.admit(1, 10, 100, [dci(70)], n_prb_limit=50, priority=5, now=100)
        assert r.pending_targets() == 1
        r.admit(1, 10, 500, [dci(70)], n_prb_limit=50, priority=5, now=500)
        assert r.pending_targets() == 1  # old entry collected

    def test_unknown_limit_allows_merge(self):
        r = ConflictResolver()
        r.admit(1, 10, 100, [dci(70, 45)], n_prb_limit=None, priority=5,
                now=90)
        outcome, _ = r.admit(1, 10, 100, [dci(71, 45)], n_prb_limit=None,
                             priority=5, now=90)
        assert outcome is ConflictOutcome.MERGED

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            ConflictResolver(retention_ttis=0)


class _CommandingApp(App):
    """Issues one scheduling command per TTI for a fixed UE."""

    def __init__(self, name, priority, rnti, n_prb=50):
        self.name = name
        self.priority = priority
        self.period_ttis = 1
        self.rnti = rnti
        self.n_prb = n_prb

    def run(self, tti, nb):
        for agent_id in nb.agent_ids():
            agent = nb.rib.agent(agent_id)
            for cell_id in agent.cells:
                nb.send_dl_command(agent_id, cell_id, tti + 2,
                                   [dci(self.rnti, self.n_prb)])


class TestEndToEndArbitration:
    def build(self):
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        sim.add_agent(enb)
        ue = Ue("001", FixedCqi(12))
        sim.add_ue(enb, ue)
        sim.add_downlink_traffic(enb, ue, CbrSource(5.0, start_tti=30))
        return sim, enb, ue

    def test_conflicting_apps_resolved_by_priority(self):
        sim, enb, ue = self.build()
        high = _CommandingApp("high_sched", priority=90, rnti=70)
        low = _CommandingApp("low_sched", priority=10, rnti=70)
        sim.master.add_app(high)
        sim.master.add_app(low)
        sim.run(500)
        counters = sim.master.northbound.conflicts.counters
        # Exactly one decision admitted per target: the low-priority
        # app's duplicate claims were denied.
        assert counters.denied > 100
        assert counters.allowed > 100
        assert counters.replaced == 0  # high runs first each cycle

    def test_low_priority_first_gets_replaced(self):
        sim, enb, ue = self.build()

        class LowFirst(_CommandingApp):
            # Runs first despite low priority by issuing from on_start?
            pass

        low = _CommandingApp("low_sched", priority=95, rnti=70)
        high = _CommandingApp("high_sched", priority=99, rnti=70)
        # Register low with *higher run order* by giving it priority 95
        # but have 'high' claim a later run slot with priority 99 -> the
        # resolver sees high first.  To exercise REPLACED we invert: the
        # app registered with lower task priority issues first.
        sim.master.northbound.set_current_app(low)
        sim.master.northbound.conflicts.admit(  # direct, for clarity
            1, 10, 50, [dci(70, 50)], n_prb_limit=50, priority=10, now=40)
        outcome, _ = sim.master.northbound.conflicts.admit(
            1, 10, 50, [dci(70, 50)], n_prb_limit=50, priority=99, now=40)
        assert outcome is ConflictOutcome.REPLACED

    def test_disjoint_apps_both_served(self):
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        sim.add_agent(enb)
        ues = []
        for i in range(2):
            ue = Ue(f"00{i}", FixedCqi(12))
            sim.add_ue(enb, ue)
            sim.add_downlink_traffic(enb, ue, CbrSource(3.0, start_tti=30))
            ues.append(ue)
        app_a = _CommandingApp("sched_a", priority=90, rnti=ues[0].rnti,
                               n_prb=25)
        app_b = _CommandingApp("sched_b", priority=80, rnti=ues[1].rnti,
                               n_prb=25)
        sim.master.add_app(app_a)
        sim.master.add_app(app_b)
        # Activate remote control so the commands actually drive the MAC.
        sim.agents[enb.enb_id].mac.activate("dl_scheduling", "remote_stub")
        sim.run(2000)
        counters = sim.master.northbound.conflicts.counters
        assert counters.merged > 100
        assert counters.denied == 0
        # Both apps' UEs receive data through the merged decisions.
        assert ues[0].rx_bytes_total > 0
        assert ues[1].rx_bytes_total > 0
