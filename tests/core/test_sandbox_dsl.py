"""Tests for VSF sandboxing (Sec 4.3.1) and the scheduling DSL (Sec 7.3)."""

import time

import pytest

from repro.core.agent import FlexRanAgent
from repro.core.agent.cmi import (
    ControlModule,
    SandboxPolicy,
    VsfFault,
)
from repro.core.delegation import pack_vsf
from repro.core.dsl import DslError, DslScheduler, validate_program
from repro.core.protocol.messages import (
    EventNotification,
    EventType,
    PolicyReconfiguration,
    VsfUpdate,
)
from repro.core.policy import build_policy
from repro.lte.enodeb import EnodeB
from repro.lte.mac.dci import SchedulingContext, UeView
from repro.lte.phy.channel import FixedCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue
from repro.net.transport import ControlConnection


class ToyModule(ControlModule):
    name = "toy"
    OPERATIONS = ("op",)


class TestSandbox:
    def test_exception_quarantines_and_falls_back(self):
        m = ToyModule(sandbox=SandboxPolicy())
        m.register_vsf("op", "good", lambda x: x)
        m.register_vsf("op", "bad", lambda x: 1 / 0, activate=True)
        m.set_fallback("op", "good")
        assert m.invoke("op", 21) == 21  # fallback answered
        assert m.active_name("op") == "good"
        assert "bad" not in m.cached_names("op")
        assert m._slot("op").faults == 1

    def test_time_budget_overruns_quarantine(self):
        m = ToyModule(sandbox=SandboxPolicy(time_budget_ms=0.1,
                                            max_consecutive_overruns=2))
        m.register_vsf("op", "good", lambda: "ok")

        def slow():
            end = time.perf_counter() + 0.001
            while time.perf_counter() < end:
                pass
            return "slow"

        m.register_vsf("op", "sluggish", slow, activate=True)
        m.set_fallback("op", "good")
        assert m.invoke("op") == "slow"     # first overrun tolerated
        assert m.invoke("op") == "slow"     # second overrun -> quarantine
        assert m.active_name("op") == "good"
        assert m.invoke("op") == "ok"

    def test_fast_vsf_resets_overrun_counter(self):
        m = ToyModule(sandbox=SandboxPolicy(time_budget_ms=50.0,
                                            max_consecutive_overruns=2))
        m.register_vsf("op", "fine", lambda: "ok", activate=True)
        for _ in range(10):
            assert m.invoke("op") == "ok"
        assert m._slot("op").faults == 0

    def test_no_fallback_available_raises(self):
        m = ToyModule(sandbox=SandboxPolicy())
        m.register_vsf("op", "only", lambda: 1 / 0, activate=True)
        with pytest.raises(VsfFault):
            m.invoke("op")

    def test_without_sandbox_exceptions_propagate(self):
        m = ToyModule()  # no sandbox
        m.register_vsf("op", "bad", lambda: 1 / 0, activate=True)
        with pytest.raises(ZeroDivisionError):
            m.invoke("op")

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SandboxPolicy(time_budget_ms=0)
        with pytest.raises(ValueError):
            SandboxPolicy(max_consecutive_overruns=0)


class TestSandboxEndToEnd:
    def test_crashing_pushed_vsf_does_not_kill_the_cell(self):
        """A buggy pushed scheduler is quarantined mid-run: the data
        plane falls back to the built-in scheduler and keeps serving,
        and the master is notified with a VSF_FAULT event."""
        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
        # Trust a deliberately broken factory on this agent.
        agent.vsf_registry.register(
            "test:crashy", lambda: (lambda ctx: [][1]))
        ue = Ue("001", FixedCqi(12))
        rnti = enb.attach_ue(ue, tti=0)
        conn.master_side.send(VsfUpdate(
            module="mac", operation="dl_scheduling", name="crashy",
            blob=pack_vsf("test:crashy")), now=0)
        conn.master_side.send(PolicyReconfiguration(text=build_policy(
            "mac", "dl_scheduling", behavior="crashy")), now=0)
        agent.tick_rx(0)
        assert agent.mac.active_name("dl_scheduling") == "crashy"
        for t in range(1500):
            if t >= 20:
                enb.enqueue_dl(rnti, 3000, t)
            agent.tick_tx(t)
            enb.tick(t)
        # Quarantined and reverted to the designated fallback.
        assert agent.mac.active_name("dl_scheduling") == "local_rr"
        # Service continued at full rate after the revert.
        assert ue.throughput_mbps(1499) == pytest.approx(
            capacity_mbps(12, 50), rel=0.1)
        # The master heard about it.
        events = [m for m in conn.master_side.receive(now=1500)
                  if isinstance(m, EventNotification)
                  and m.event_type == int(EventType.VSF_FAULT)]
        assert events
        assert events[0].details["vsf"] == "crashy"


def ctx_with(ues, n_prb=50, subframe=0):
    return SchedulingContext(tti=subframe, n_prb=n_prb, ues=ues,
                             subframe=subframe)


def ue(rnti, queue=10 ** 6, cqi=10, **labels):
    return UeView(rnti=rnti, queue_bytes=queue, cqi=cqi,
                  labels=dict(labels))


class TestDslValidation:
    @pytest.mark.parametrize("bad", [
        [],                                         # empty program
        [{"bogus": 1}],                             # unknown key
        [{"when": {"weekday": 1}}],                 # unknown predicate
        [{"when": {"subframe_in": [10]}}],          # subframe range
        [{"share": 1.5}],                           # share out of range
        [{"policy": "nonexistent"}],                # unknown policy
        [{"serve": "everyone"}],                    # unsupported serve
        "not a list",
    ])
    def test_rejected(self, bad):
        with pytest.raises(DslError):
            validate_program(bad)

    def test_valid_program(self):
        validate_program([
            {"when": {"subframe_in": [1, 3]}, "serve": "nobody"},
            {"when": {"label": {"operator": "mvno"}}, "share": 0.3},
            {"policy": "proportional_fair"},
        ])


class TestDslScheduler:
    def test_label_shares(self):
        sched = DslScheduler([
            {"when": {"label": {"operator": "mvno"}}, "share": 0.3},
            {"when": {"label": {"operator": "mno"}}, "share": 0.7},
        ])
        ues = [ue(70, operator="mno"), ue(80, operator="mvno")]
        out = sched(ctx_with(ues))
        mvno = sum(a.n_prb for a in out if a.rnti == 80)
        mno = sum(a.n_prb for a in out if a.rnti == 70)
        assert mvno == 15 and mno == 35

    def test_subframe_gating(self):
        sched = DslScheduler([
            {"when": {"subframe_in": [1, 3]}, "serve": "nobody"},
            {"policy": "fair_share"},
        ])
        assert sched(ctx_with([ue(70)], subframe=1)) == []
        assert sched(ctx_with([ue(70)], subframe=2))

    def test_first_match_consumes_ue(self):
        sched = DslScheduler([
            {"when": {"label": {"group": "premium"}}, "share": 0.8},
            {"share": 0.2},
        ])
        ues = [ue(70, group="premium"), ue(71)]
        out = sched(ctx_with(ues))
        premium = sum(a.n_prb for a in out if a.rnti == 70)
        other = sum(a.n_prb for a in out if a.rnti == 71)
        assert premium == 40 and other == 10
        # Exactly one assignment per UE: no double service.
        assert sorted(a.rnti for a in out) == [70, 71]

    def test_min_queue_predicate(self):
        sched = DslScheduler([
            {"when": {"min_queue_bytes": 10_000}, "policy": "fair_share"},
        ])
        out = sched(ctx_with([ue(70, queue=100), ue(71, queue=50_000)]))
        assert [a.rnti for a in out] == [71]

    def test_rules_rewritable_at_runtime(self):
        sched = DslScheduler([{"share": 1.0}])
        sched.set_parameter("rules", [
            {"when": {"label": {"operator": "mvno"}}, "share": 0.5}])
        out = sched(ctx_with([ue(70), ue(80, operator="mvno")]))
        assert [a.rnti for a in out] == [80]

    def test_invalid_rewrite_rejected(self):
        sched = DslScheduler([{"share": 1.0}])
        with pytest.raises(DslError):
            sched.set_parameter("rules", [{"bogus": 1}])


class TestDslOverTheWire:
    def test_pushed_dsl_program_drives_the_cell(self):
        """The full §7.3 flow: a declarative program travels in a VSF
        blob, is instantiated by the trusted factory, activated by a
        policy message, and partitions the carrier as specified."""
        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
        ue_a = Ue("a", FixedCqi(12), labels={"operator": "mno"})
        ue_b = Ue("b", FixedCqi(12), labels={"operator": "mvno"})
        ra = enb.attach_ue(ue_a, tti=0)
        rb = enb.attach_ue(ue_b, tti=0)
        conn.master_side.send(VsfUpdate(
            module="mac", operation="dl_scheduling", name="dsl_slices",
            blob=pack_vsf("dsl:scheduler", {"rules": [
                {"when": {"label": {"operator": "mvno"}}, "share": 0.25},
                {"when": {"label": {"operator": "mno"}}, "share": 0.75},
            ]})), now=0)
        conn.master_side.send(PolicyReconfiguration(text=build_policy(
            "mac", "dl_scheduling", behavior="dsl_slices")), now=0)
        agent.tick_rx(0)
        for t in range(3000):
            if t >= 50:
                for r in (ra, rb):
                    enb.enqueue_dl(r, 4000, t)
            enb.tick(t)
        ratio = ue_a.rx_bytes_total / ue_b.rx_bytes_total
        assert ratio == pytest.approx(3.0, rel=0.1)
