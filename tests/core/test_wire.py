"""Tests for the wire primitives (varints, strings, collections)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.protocol.errors import DecodeError, EncodeError
from repro.core.protocol.wire import Reader, Writer, varint_size


class TestVarint:
    @pytest.mark.parametrize("value,size", [
        (0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), (2 ** 32, 5)])
    def test_known_sizes(self, value, size):
        w = Writer()
        w.varint(value)
        assert len(w) == size
        assert varint_size(value) == size

    def test_negative_rejected(self):
        with pytest.raises(EncodeError):
            Writer().varint(-1)
        with pytest.raises(EncodeError):
            varint_size(-1)

    @given(st.integers(min_value=0, max_value=2 ** 63))
    def test_roundtrip(self, value):
        w = Writer()
        w.varint(value)
        assert Reader(w.getvalue()).varint() == value

    def test_truncated_raises(self):
        w = Writer()
        w.varint(300)
        with pytest.raises(DecodeError):
            Reader(w.getvalue()[:1]).varint()

    def test_overlong_raises(self):
        with pytest.raises(DecodeError):
            Reader(b"\x80" * 11).varint()


class TestSvarint:
    @given(st.integers(min_value=-2 ** 60, max_value=2 ** 60))
    def test_roundtrip(self, value):
        w = Writer()
        w.svarint(value)
        assert Reader(w.getvalue()).svarint() == value

    def test_small_negatives_compact(self):
        w = Writer()
        w.svarint(-1)
        assert len(w) == 1


class TestCompound:
    @given(st.text(max_size=200))
    def test_string_roundtrip(self, text):
        w = Writer()
        w.string(text)
        assert Reader(w.getvalue()).string() == text

    @given(st.binary(max_size=500))
    def test_blob_roundtrip(self, data):
        w = Writer()
        w.blob(data)
        assert Reader(w.getvalue()).blob() == data

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=50))
    def test_varint_list_roundtrip(self, values):
        w = Writer()
        w.varint_list(values)
        assert Reader(w.getvalue()).varint_list() == values

    @given(st.lists(st.integers(min_value=-10 ** 9, max_value=10 ** 9),
                    max_size=50))
    def test_svarint_list_roundtrip(self, values):
        w = Writer()
        w.svarint_list(values)
        assert Reader(w.getvalue()).svarint_list() == values

    @given(st.dictionaries(st.integers(min_value=0, max_value=2 ** 30),
                           st.integers(min_value=0, max_value=2 ** 30),
                           max_size=30))
    def test_int_map_roundtrip(self, mapping):
        w = Writer()
        w.int_map(mapping)
        assert Reader(w.getvalue()).int_map() == mapping

    @given(st.dictionaries(st.text(max_size=20), st.text(max_size=20),
                           max_size=20))
    def test_str_map_roundtrip(self, mapping):
        w = Writer()
        w.str_map(mapping)
        assert Reader(w.getvalue()).str_map() == mapping

    def test_sequential_fields(self):
        w = Writer()
        w.varint(7).string("hello").byte(255).blob(b"xy")
        r = Reader(w.getvalue())
        assert r.varint() == 7
        assert r.string() == "hello"
        assert r.byte() == 255
        assert r.blob() == b"xy"
        r.expect_end()

    def test_expect_end_fails_on_trailing(self):
        r = Reader(b"\x00\x00")
        r.byte()
        with pytest.raises(DecodeError):
            r.expect_end()

    def test_truncated_blob(self):
        w = Writer()
        w.blob(b"hello")
        with pytest.raises(DecodeError):
            Reader(w.getvalue()[:3]).blob()

    def test_byte_out_of_range(self):
        with pytest.raises(EncodeError):
            Writer().byte(256)
