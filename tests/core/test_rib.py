"""Tests for the RAN Information Base and its updater."""

import pytest

from repro.core.controller.rib import Rib
from repro.core.controller.rib_updater import RibUpdater
from repro.core.protocol.messages import (
    CellConfigRep,
    CellStatsReport,
    ConfigReply,
    EventNotification,
    Hello,
    Header,
    StatsReply,
    SubframeTrigger,
    UeConfigRep,
    UeStatsReport,
)


@pytest.fixture
def rib():
    return Rib()


@pytest.fixture
def updater(rib):
    return RibUpdater(rib)


def hello(agent_id=1):
    return Hello(header=Header(agent_id=agent_id),
                 capabilities=["mac"], n_cells=1)


def config_reply(agent_id=1, rntis=(70,)):
    return ConfigReply(
        header=Header(agent_id=agent_id), enb_id=agent_id,
        cells=[CellConfigRep(cell_id=10, n_prb_dl=50)],
        ues=[UeConfigRep(rnti=r, imsi=f"{r}", cell_id=10) for r in rntis])


def stats_reply(agent_id=1, rntis=(70,), cqi=12, queue=1000):
    return StatsReply(
        header=Header(agent_id=agent_id),
        ue_reports=[UeStatsReport(rnti=r, queues={3: queue}, wb_cqi=cqi,
                                  wb_cqi_clear=cqi + 1) for r in rntis],
        cell_reports=[CellStatsReport(cell_id=10, n_prb=50,
                                      connected_ues=len(rntis))])


class TestForestStructure:
    def test_hello_creates_agent_root(self, rib, updater):
        updater.apply(1, hello(), now=5)
        agent = rib.agent(1)
        assert agent.capabilities == ["mac"]
        assert agent.connected_tti == 5

    def test_config_builds_cells_and_ues(self, rib, updater):
        updater.apply(1, config_reply(rntis=(70, 71)), now=0)
        agent = rib.agent(1)
        assert list(agent.cells) == [10]
        assert sorted(agent.cells[10].ues) == [70, 71]
        assert agent.enb_id == 1

    def test_stats_attach_to_ues(self, rib, updater):
        updater.apply(1, config_reply(), now=0)
        updater.apply(1, stats_reply(cqi=9), now=3)
        node = rib.agent(1).cells[10].ues[70]
        assert node.cqi == 9
        assert node.cqi_clear == 10
        assert node.queue_bytes == 1000
        assert node.stats_tti == 3

    def test_stats_create_ue_nodes_for_single_cell(self, rib, updater):
        # Stats may arrive before the UE config refresh.
        updater.apply(1, config_reply(rntis=()), now=0)
        updater.apply(1, stats_reply(rntis=(75,)), now=1)
        assert 75 in rib.agent(1).cells[10].ues

    def test_ue_scoped_config_removes_departed(self, rib, updater):
        updater.apply(1, config_reply(rntis=(70, 71)), now=0)
        gone = ConfigReply(header=Header(agent_id=1), enb_id=1, cells=[],
                           ues=[UeConfigRep(rnti=71, imsi="71", cell_id=10)])
        updater.apply(1, gone, now=5)
        assert sorted(rib.agent(1).cells[10].ues) == [71]

    def test_iteration_order_deterministic(self, rib, updater):
        updater.apply(2, config_reply(agent_id=2, rntis=(75, 71)), now=0)
        updater.apply(1, config_reply(agent_id=1, rntis=(72,)), now=0)
        order = [(a.agent_id, u.rnti) for a, _, u in rib.all_ues()]
        assert order == [(1, 72), (2, 71), (2, 75)]

    def test_find_ue(self, rib, updater):
        updater.apply(1, config_reply(rntis=(70,)), now=0)
        agent, cell, ue = rib.find_ue(70)
        assert (agent.agent_id, cell.cell_id, ue.rnti) == (1, 10, 70)
        assert rib.find_ue(99) is None

    def test_unknown_agent_rejected(self, rib):
        with pytest.raises(KeyError):
            rib.agent(9)

    def test_memory_footprint_grows_with_content(self, rib, updater):
        empty = rib.memory_footprint_bytes()
        updater.apply(1, config_reply(rntis=tuple(range(70, 90))), now=0)
        updater.apply(1, stats_reply(rntis=tuple(range(70, 90))), now=1)
        assert rib.memory_footprint_bytes() > empty


class TestSubframeSync:
    def test_estimate_tracks_sync(self, rib, updater):
        updater.apply(1, SubframeTrigger(header=Header(agent_id=1, tti=100)),
                      now=110)
        agent = rib.agent(1)
        # Estimate = agent tti at send + elapsed since reception.
        assert agent.estimated_subframe(110) == 100
        assert agent.estimated_subframe(150) == 140

    def test_estimate_without_sync_falls_back_to_now(self, rib, updater):
        updater.apply(1, hello(), now=0)
        assert rib.agent(1).estimated_subframe(42) == 42


class TestEvents:
    def test_event_returned_for_notification_service(self, rib, updater):
        out = updater.apply(1, EventNotification(
            header=Header(agent_id=1, tti=7), event_type=0, rnti=70), now=8)
        assert len(out) == 1
        assert rib.agent(1).last_events == [(0, 70, 7)]

    def test_event_history_bounded(self, rib, updater):
        for i in range(100):
            updater.apply(1, EventNotification(
                header=Header(agent_id=1, tti=i), event_type=0, rnti=70),
                now=i)
        assert len(rib.agent(1).last_events) <= 32

    def test_counters(self, rib, updater):
        updater.apply(1, hello(), now=0)
        updater.apply(1, config_reply(), now=0)
        updater.apply(1, stats_reply(), now=1)
        updater.apply(1, SubframeTrigger(header=Header(agent_id=1)), now=1)
        assert updater.counters.messages == 4
        assert updater.counters.stats_replies == 1
        assert updater.counters.config_updates == 1
        assert updater.counters.sync_updates == 1
