"""Tests for statistics-group filtering and a multi-eNodeB soak run."""

import pytest

from repro.core.agent import FlexRanAgent
from repro.core.protocol.messages import (
    Header,
    ReportType,
    StatsFlags,
    StatsRequest,
)
from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi, GaussMarkovSinr
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource


def make_manager(n_ues=2):
    enb = EnodeB(1)
    agent = FlexRanAgent(1, enb)
    rntis = []
    for i in range(n_ues):
        r = enb.attach_ue(Ue(f"{i:03d}", FixedCqi(11)), tti=0)
        enb.enqueue_dl(r, 5000, 0)
        rntis.append(r)
    for t in range(30):
        enb.tick(t)
    return enb, agent.reports, rntis


def request(flags, xid=1, report_type=ReportType.ONE_OFF):
    return StatsRequest(header=Header(xid=xid),
                        report_type=int(report_type),
                        period_ttis=1, flags=int(flags))


class TestStatsFlagFiltering:
    def reply_for(self, flags):
        enb, reports, rntis = make_manager()
        reports.register(request(flags), now=30)
        replies = reports.due_replies(30)
        assert len(replies) == 1
        return replies[0]

    def test_queues_only(self):
        reply = self.reply_for(StatsFlags.QUEUES)
        rep = reply.ue_reports[0]
        assert rep.queues  # included
        assert rep.wb_cqi == 0  # CQI group excluded
        assert rep.subband_cqi == []
        assert rep.rlc_bytes_in == 0
        assert reply.cell_reports == []  # CELL excluded

    def test_cqi_only(self):
        reply = self.reply_for(StatsFlags.CQI)
        rep = reply.ue_reports[0]
        assert rep.wb_cqi == 11
        assert rep.subband_cqi
        assert rep.queues == {}
        assert rep.harq_states == []

    def test_cell_only(self):
        reply = self.reply_for(StatsFlags.CELL)
        assert reply.cell_reports
        rep = reply.ue_reports[0]
        assert rep.queues == {} and rep.wb_cqi == 0

    def test_full_includes_everything(self):
        reply = self.reply_for(StatsFlags.FULL)
        rep = reply.ue_reports[0]
        assert rep.queues and rep.wb_cqi == 11 and rep.harq_states
        assert reply.cell_reports

    def test_flag_combination(self):
        reply = self.reply_for(StatsFlags.QUEUES | StatsFlags.RLC)
        rep = reply.ue_reports[0]
        assert rep.queues
        assert rep.rlc_bytes_in > 0
        assert rep.pdcp_tx_bytes == 0

    def test_smaller_flags_mean_smaller_wire_size(self):
        from repro.core.protocol import codec
        small = codec.encoded_size(self.reply_for(StatsFlags.QUEUES))
        full = codec.encoded_size(self.reply_for(StatsFlags.FULL))
        assert small < full / 2

    def test_invalid_periodic_request_rejected(self):
        enb, reports, _ = make_manager()
        with pytest.raises(ValueError):
            reports.register(StatsRequest(
                header=Header(xid=9),
                report_type=int(ReportType.PERIODIC),
                period_ttis=0), now=0)


class TestMultiEnbSoak:
    def test_five_enbs_heterogeneous_apps(self):
        """A larger deployment: 5 eNodeBs, 40 UEs, monitoring +
        mobility + energy apps coexisting; everything stays consistent."""
        from repro.core.apps.energy import DrxEnergyApp
        from repro.core.apps.monitoring import MonitoringApp

        sim = Simulation(with_master=True)
        ues = []
        for e in range(5):
            enb = sim.add_enb(e + 1)
            sim.add_agent(enb, rtt_ms=2.0 * e)
            for i in range(8):
                ue = Ue(f"{e}{i:03d}", GaussMarkovSinr(
                    18.0, sigma_db=1.0, seed=e * 10 + i))
                sim.add_ue(enb, ue)
                if i % 2 == 0:  # half the UEs are active, half idle
                    sim.add_downlink_traffic(
                        enb, ue, CbrSource(1.0, start_tti=100))
                ues.append(ue)
        monitor = MonitoringApp(period_ttis=100)
        energy = DrxEnergyApp(idle_window_ttis=300)
        sim.master.add_app(monitor)
        sim.master.add_app(energy)
        sim.run(3000)

        assert sim.master.rib.ue_count() == 40
        assert len(sim.master.live_agent_ids()) == 5
        active = [u for i, u in enumerate(ues) if (i % 8) % 2 == 0]
        idle = [u for i, u in enumerate(ues) if (i % 8) % 2 == 1]
        # Active UEs all got their traffic; idle UEs were put to sleep.
        assert all(u.rx_bytes_total > 100_000 for u in active)
        assert energy.sleeping_ues() == len(idle)
        # The monitor collected series for every UE.
        assert len(monitor.series) == 40
        # No task-manager starvation of either app.
        assert sim.master.registry.registration("monitoring").runs > 0
        assert sim.master.registry.registration("drx_energy_saver").runs > 0
