"""Snapshot portability: subset handoff and cross-process restore.

The cluster runtime ships RIB subtrees between processes -- a shard
respawn snapshots the dead worker's agents and merges them back after
the replacement spawns.  These tests pin the two properties that makes
safe: agent subtrees are self-contained (subset snapshot/merge), and a
snapshot serialized in one interpreter restores losslessly in a fresh
one (``multiprocessing`` spawn workers share no memory with the
master).
"""

import json
import os
import subprocess
import sys

from repro.core.controller.master import MasterController
from repro.core.survive.snapshot import (
    merge_rib_subset,
    restore_rib,
    rib_forest_equal,
    snapshot_master,
    snapshot_rib,
    snapshot_rib_subset,
)
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource


def _populated_sim(n_enbs=3):
    sim = Simulation(with_master=True, realtime_master=False)
    for e in range(n_enbs):
        enb = sim.add_enb(seed=e)
        sim.add_agent(enb)
        for i in range(2):
            ue = Ue(f"{e:02d}{i:04d}", FixedCqi(10))
            sim.add_ue(enb, ue)
            sim.add_downlink_traffic(enb, ue, CbrSource(1.0, start_tti=20))
    sim.run(300)
    return sim


class TestSubsetHandoff:
    def test_subset_selects_only_wanted_agents(self):
        sim = _populated_sim()
        subset = snapshot_rib_subset(sim.master.rib, [1, 3])
        assert sorted(rec["agent_id"] for rec in subset) == [1, 3]
        full = {rec["agent_id"]: rec for rec in snapshot_rib(sim.master.rib)}
        for rec in subset:
            assert rec == full[rec["agent_id"]]

    def test_merge_grafts_into_existing_forest(self):
        sim = _populated_sim()
        rib = sim.master.rib
        subset = snapshot_rib_subset(rib, [2])
        # Simulate the respawn path: drop the subtree, merge it back.
        before = snapshot_rib(rib)
        rib.remove_agent(2)
        assert 2 not in rib.agent_ids()
        merged = merge_rib_subset(rib, subset)
        assert merged == [2]
        assert snapshot_rib(rib) == before

    def test_merge_replaces_stale_subtree(self):
        sim = _populated_sim()
        rib = sim.master.rib
        subset = snapshot_rib_subset(rib, [1])
        # Corrupt the live subtree, then merge the snapshot over it.
        rib.agent(1).cells.clear()
        merge_rib_subset(rib, subset)
        assert rib.agent(1).cells


class TestCrossProcessRestore:
    """Serialize here, restore in a freshly spawned interpreter."""

    _CHILD = (
        "import json, sys\n"
        "from repro.core.controller.master import MasterController\n"
        "from repro.core.survive.snapshot import (\n"
        "    restore_master, snapshot_master)\n"
        "snapshot = json.load(sys.stdin)\n"
        "master = MasterController(realtime=False)\n"
        "restore_master(master, snapshot)\n"
        "json.dump(snapshot_master(master, snapshot['tti']), sys.stdout)\n"
    )

    def test_snapshot_survives_process_boundary(self):
        sim = _populated_sim()
        snapshot = snapshot_master(sim.master, sim.now)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p)
        proc = subprocess.run(
            [sys.executable, "-c", self._CHILD],
            input=json.dumps(snapshot), capture_output=True,
            text=True, env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))),
            timeout=60)
        assert proc.returncode == 0, proc.stderr
        echoed = json.loads(proc.stdout)
        # The forest the child rebuilt is bit-identical to ours.
        assert echoed["agents"] == snapshot["agents"]
        assert rib_forest_equal(
            restore_rib(echoed["agents"]), sim.master.rib)
        # Transaction state crossed over too: the child's xid counter
        # continued from (not behind) the snapshot.
        assert echoed["xid"] >= snapshot["xid"]
        assert echoed["last_echo_sent"] == snapshot["last_echo_sent"]

    def test_restore_into_fresh_master_in_process(self):
        """Control for the subprocess test: same restore, same
        interpreter -- isolates any failure to the process boundary."""
        from repro.core.survive.snapshot import restore_master
        sim = _populated_sim()
        snapshot = json.loads(
            json.dumps(snapshot_master(sim.master, sim.now)))
        fresh = MasterController(realtime=False)
        restore_master(fresh, snapshot)
        assert rib_forest_equal(fresh.rib, sim.master.rib)
