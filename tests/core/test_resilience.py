"""Tests for control-plane resilience: the agent's connection
supervisor, local fallback, reconnect backoff and RIB liveness."""

import pytest

from repro.core.agent import FlexRanAgent
from repro.core.agent.connection import (
    ConnectionConfig,
    ConnectionState,
    ConnectionSupervisor,
)
from repro.core.controller import MasterController
from repro.core.controller.rib import AgentLiveness
from repro.lte.enodeb import EnodeB
from repro.net.transport import ControlConnection
from repro.sim.scenarios import FaultSpec, partitioned_centralized

CFG = dict(keepalive_period_ttis=20, disconnect_timeout_ttis=60,
           reconnect_backoff_ttis=10, reconnect_backoff_cap_ttis=40)


class TestSupervisor:
    def test_dormant_until_first_message(self):
        events = []
        sup = ConnectionSupervisor(
            ConnectionConfig(**CFG),
            on_disconnect=lambda t: events.append(("down", t)))
        # Nothing heard ever: the supervisor never declares a loss.
        for t in range(500):
            assert sup.before_tx(t)
        assert events == []

    def test_timeout_disconnects_and_suppresses_tx(self):
        events = []
        sup = ConnectionSupervisor(
            ConnectionConfig(**CFG),
            on_disconnect=lambda t: events.append(("down", t)))
        sup.heard(10)
        assert sup.before_tx(50)
        assert not sup.before_tx(70)  # 60 TTIs of silence
        assert sup.state is ConnectionState.DISCONNECTED
        assert events == [("down", 70)]
        assert sup.stats.disconnects == 1
        assert not sup.before_tx(71)

    def test_keepalive_probes_on_silence(self):
        probes = []
        sup = ConnectionSupervisor(
            ConnectionConfig(**CFG), send_keepalive=probes.append)
        sup.heard(0)
        for t in range(1, 60):
            sup.before_tx(t)
            if t % 3 == 0:
                sup.heard(t)  # regular traffic: no probes needed
        assert probes == []
        sup.heard(100)
        for t in range(101, 150):
            sup.before_tx(t)
        # Silence from 100: probes at 120 and 140 (period 20).
        assert probes == [120, 140]

    def test_reconnect_backoff_doubles_and_caps(self):
        probes = []
        sup = ConnectionSupervisor(
            ConnectionConfig(**CFG), send_reconnect_probe=probes.append)
        sup.heard(0)
        for t in range(1, 300):
            sup.before_tx(t)
        assert sup.state is ConnectionState.DISCONNECTED
        # Disconnected at 60; probes at 70, then 10*2=20 later, then 40,
        # then capped at 40: 70, 90, 130, 170, 210, 250, 290.
        assert probes == [70, 90, 130, 170, 210, 250, 290]

    def test_reconnect_restores_and_resets_backoff(self):
        ups, downs = [], []
        sup = ConnectionSupervisor(
            ConnectionConfig(**CFG),
            on_disconnect=downs.append, on_reconnect=ups.append)
        sup.heard(0)
        for t in range(1, 100):
            sup.before_tx(t)
        assert downs == [60]
        sup.heard(100)
        assert sup.state is ConnectionState.CONNECTED
        assert ups == [100]
        assert sup.stats.reconnects == 1
        # The next outage starts from the initial backoff again.
        for t in range(101, 200):
            sup.before_tx(t)
        assert downs == [60, 160]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConnectionConfig(keepalive_period_ttis=0)
        with pytest.raises(ValueError):
            ConnectionConfig(keepalive_period_ttis=100,
                             disconnect_timeout_ttis=100)
        with pytest.raises(ValueError):
            ConnectionConfig(reconnect_backoff_ttis=0)
        with pytest.raises(ValueError):
            ConnectionConfig(reconnect_backoff_ttis=50,
                             reconnect_backoff_cap_ttis=20)


class TestAgentFallback:
    def build(self):
        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side,
                             connection_config=ConnectionConfig(**CFG))
        return enb, agent, conn

    def test_remote_stub_swapped_for_fallback_on_loss(self):
        enb, agent, conn = self.build()
        agent.mac.activate("dl_scheduling", "remote_stub")
        agent.mac.activate("ul_scheduling", "remote_stub_ul")
        from repro.core.protocol.messages import EchoReply
        conn.master_side.send(EchoReply(), now=0)
        agent.tick_rx(0)  # arms the supervisor
        for t in range(1, 80):
            agent.tick_tx(t)
        assert not agent.connection.connected
        assert agent.mac.active_name("dl_scheduling") == "local_rr"
        assert agent.mac.active_name("ul_scheduling") == "local_fair_ul"

    def test_local_vsf_untouched_on_loss(self):
        enb, agent, conn = self.build()
        agent.mac.activate("dl_scheduling", "local_pf")
        from repro.core.protocol.messages import EchoReply
        conn.master_side.send(EchoReply(), now=0)
        agent.tick_rx(0)
        for t in range(1, 80):
            agent.tick_tx(t)
        assert agent.mac.active_name("dl_scheduling") == "local_pf"

    def test_reconnect_restores_remote_stub_and_rehellos(self):
        enb, agent, conn = self.build()
        agent.mac.activate("dl_scheduling", "remote_stub")
        from repro.core.protocol.messages import EchoReply, Hello
        conn.master_side.send(EchoReply(), now=0)
        agent.tick_rx(0)
        agent.tick_tx(0)
        conn.master_side.receive(now=0)  # consume the initial hello
        for t in range(1, 80):
            agent.tick_tx(t)
        assert agent.mac.active_name("dl_scheduling") == "local_rr"
        # Master answers one of the reconnect probes.
        conn.master_side.send(EchoReply(), now=80)
        agent.tick_rx(80)
        assert agent.connection.connected
        assert agent.mac.active_name("dl_scheduling") == "remote_stub"
        agent.tick_tx(81)
        hellos = [m for m in conn.master_side.receive(now=81)
                  if isinstance(m, Hello)]
        assert hellos  # the agent re-announced itself


class TestPartitionIntegration:
    def test_partition_fallback_reconnect_and_rib_states(self):
        cfg = ConnectionConfig(keepalive_period_ttis=50,
                               disconnect_timeout_ttis=150,
                               reconnect_backoff_ttis=25,
                               reconnect_backoff_cap_ttis=100)
        sc = partitioned_centralized(
            ues_per_enb=2, rtt_ms=2.0, schedule_ahead=4,
            fault=FaultSpec(partitions=[(1000, 1600)]),
            connection_config=cfg,
            echo_period_ttis=100, liveness_timeout_ttis=2000,
            stale_after_ttis=200)
        sc.sim.run(3000)
        agent = sc.agents[0]
        sup = agent.connection

        # The agent flipped to local control within its timeout window
        # and reconnected (with at least one backoff probe) after heal.
        states = [s for _, s in sup.transitions]
        assert states == [ConnectionState.DISCONNECTED,
                          ConnectionState.CONNECTED]
        down_tti, up_tti = (t for t, _ in sup.transitions)
        assert 1000 < down_tti <= 1000 + cfg.disconnect_timeout_ttis + 1
        assert up_tti >= 1600
        assert sup.stats.reconnect_attempts >= 1
        assert agent.mac.active_name("dl_scheduling") == "remote_stub"

        # RIB liveness: ACTIVE -> STALE -> ACTIVE (window shorter than
        # the master's liveness timeout, so never DEAD).
        node = sc.sim.master.rib.agent(agent.agent_id)
        assert node.liveness is AgentLiveness.ACTIVE
        seen = [s for _, s in node.liveness_history]
        assert seen == [AgentLiveness.STALE, AgentLiveness.ACTIVE]
        assert sc.sim.master.agents_declared_dead == 0

    def test_partition_to_dead_and_reattach(self):
        cfg = ConnectionConfig(keepalive_period_ttis=50,
                               disconnect_timeout_ttis=150,
                               reconnect_backoff_ttis=25,
                               reconnect_backoff_cap_ttis=100)
        sc = partitioned_centralized(
            ues_per_enb=2, rtt_ms=2.0, schedule_ahead=4,
            fault=FaultSpec(partitions=[(1000, 2000)]),
            connection_config=cfg,
            echo_period_ttis=100, liveness_timeout_ttis=400,
            stale_after_ttis=100)
        sc.sim.run(3000)
        node = sc.sim.master.rib.agent(sc.agents[0].agent_id)
        seen = [s for _, s in node.liveness_history]
        assert seen == [AgentLiveness.STALE, AgentLiveness.DEAD,
                        AgentLiveness.ACTIVE]
        assert sc.sim.master.agents_declared_dead == 1
        assert sc.sim.master.agent_reattaches == 1

    def test_lossy_link_survives_without_disconnect(self):
        """Moderate random loss never silences the channel long enough
        to disconnect -- keepalives and retried traffic get through."""
        sc = partitioned_centralized(
            ues_per_enb=2, rtt_ms=2.0, schedule_ahead=4,
            fault=FaultSpec(loss=0.2),
            echo_period_ttis=100, liveness_timeout_ttis=1500)
        sc.sim.run(2000)
        agent = sc.agents[0]
        assert agent.connection.connected
        assert agent.connection.stats.disconnects == 0
        conn = sc.sim.connections[agent.agent_id]
        assert conn.dropped_messages() > 0


class TestRibGarbageCollection:
    def test_dead_detached_agent_removed(self):
        master = MasterController(echo_period_ttis=100,
                                  liveness_timeout_ttis=300,
                                  dead_gc_ttis=600)
        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
        master.connect_agent(1, conn.master_side)
        for t in range(20):
            agent.tick_tx(t)
            master.tick(t)
            agent.tick_rx(t)
        assert master.rib.agent_ids() == [1]
        # The agent dies and its connection is torn down.
        for t in range(20, 400):
            master.tick(t)
        assert master.rib.agent(1).liveness is AgentLiveness.DEAD
        master.disconnect_agent(1)
        for t in range(400, 1000):
            master.tick(t)
        assert master.rib.agent_ids() == []
        assert master.agents_garbage_collected == 1

    def test_connected_dead_agent_kept_for_resync(self):
        master = MasterController(echo_period_ttis=100,
                                  liveness_timeout_ttis=300,
                                  dead_gc_ttis=600)
        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
        master.connect_agent(1, conn.master_side)
        for t in range(20):
            agent.tick_tx(t)
            master.tick(t)
            agent.tick_rx(t)
        for t in range(20, 2000):
            master.tick(t)
        # Still connected (endpoint present): the subtree is retained.
        assert master.rib.agent_ids() == [1]

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            MasterController(echo_period_ttis=100,
                             liveness_timeout_ttis=300,
                             stale_after_ttis=300)
        with pytest.raises(ValueError):
            MasterController(echo_period_ttis=100,
                             liveness_timeout_ttis=300,
                             dead_gc_ttis=200)
