"""Tests for the FlexRAN agent: dispatch, reports, delegation."""

import pytest

from repro.core.agent import FlexRanAgent
from repro.core.agent.mac_module import RemoteSchedulingStub
from repro.core.delegation import pack_vsf
from repro.core.policy import build_policy
from repro.core.protocol.messages import (
    ConfigReply,
    ConfigRequest,
    DciSpec,
    DlMacCommand,
    EchoReply,
    EchoRequest,
    EventNotification,
    EventType,
    Header,
    Hello,
    PolicyReconfiguration,
    ReportType,
    SyncConfig,
    AbsPatternConfig,
    StatsReply,
    StatsRequest,
    SubframeTrigger,
    VsfUpdate,
)
from repro.lte.enodeb import EnodeB
from repro.lte.mac.dci import SchedulingContext
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.net.transport import ControlConnection


@pytest.fixture
def wired():
    """An agent wired to a zero-latency connection; returns both ends."""
    enb = EnodeB(1)
    conn = ControlConnection()
    agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
    return agent, enb, conn


def master_recv(conn, now=0):
    return conn.master_side.receive(now=now)


def master_send(conn, msg, now=0):
    conn.master_side.send(msg, now=now)


class TestHandshake:
    def test_hello_sent_once(self, wired):
        agent, _, conn = wired
        agent.tick_tx(0)
        agent.tick_tx(1)
        hellos = [m for m in master_recv(conn, 1) if isinstance(m, Hello)]
        assert len(hellos) == 1
        assert hellos[0].capabilities == ["mac", "rrc", "pdcp"]
        assert hellos[0].header.agent_id == 1

    def test_config_request_reply(self, wired):
        agent, enb, conn = wired
        enb.attach_ue(Ue("001", FixedCqi(10), labels={"op": "x"}), tti=0)
        master_send(conn, ConfigRequest(header=Header(xid=42), scope="enb"))
        agent.tick_rx(0)
        agent_replies = master_recv(conn)
        reply = next(m for m in agent_replies if isinstance(m, ConfigReply))
        assert reply.header.xid == 42
        assert reply.enb_id == 1
        assert reply.cells[0].n_prb_dl == 50
        assert reply.ues[0].labels == {"op": "x"}

    def test_echo(self, wired):
        agent, _, conn = wired
        master_send(conn, EchoRequest(header=Header(xid=7)))
        agent.tick_rx(0)
        replies = master_recv(conn)
        assert any(isinstance(m, EchoReply) and m.header.xid == 7
                   for m in replies)


class TestSync:
    def test_sync_disabled_by_default(self, wired):
        agent, _, conn = wired
        agent.tick_tx(0)
        assert not any(isinstance(m, SubframeTrigger)
                       for m in master_recv(conn))

    def test_sync_enabled_via_sync_config(self, wired):
        agent, _, conn = wired
        master_send(conn, SyncConfig(enabled=True))
        agent.tick_rx(0)
        agent.tick_tx(1)
        triggers = [m for m in master_recv(conn, 1)
                    if isinstance(m, SubframeTrigger)]
        assert len(triggers) == 1
        assert triggers[0].header.tti == 1
        assert triggers[0].sf == 1


class TestStatsReporting:
    def test_periodic_report(self, wired):
        agent, enb, conn = wired
        enb.attach_ue(Ue("001", FixedCqi(9)), tti=0)
        master_send(conn, StatsRequest(
            header=Header(xid=5), report_type=int(ReportType.PERIODIC),
            period_ttis=2))
        agent.tick_rx(0)
        for t in range(4):
            agent.tick_tx(t)
        replies = [m for m in master_recv(conn, 4)
                   if isinstance(m, StatsReply)]
        assert len(replies) == 2  # t=0 and t=2
        assert replies[0].ue_reports[0].wb_cqi == 9

    def test_one_off_report(self, wired):
        agent, enb, conn = wired
        enb.attach_ue(Ue("001", FixedCqi(9)), tti=0)
        master_send(conn, StatsRequest(
            header=Header(xid=5), report_type=int(ReportType.ONE_OFF)))
        agent.tick_rx(0)
        for t in range(5):
            agent.tick_tx(t)
        replies = [m for m in master_recv(conn, 5)
                   if isinstance(m, StatsReply)]
        assert len(replies) == 1

    def test_triggered_report_fires_on_change(self, wired):
        agent, enb, conn = wired
        rnti = enb.attach_ue(Ue("001", FixedCqi(9)), tti=0)
        master_send(conn, StatsRequest(
            header=Header(xid=5), report_type=int(ReportType.TRIGGERED)))
        agent.tick_rx(0)
        agent.tick_tx(0)   # first: always a change from nothing
        agent.tick_tx(1)   # no change
        enb.enqueue_dl(rnti, 500, 2)  # queue change
        agent.tick_tx(2)
        replies = [m for m in master_recv(conn, 2)
                   if isinstance(m, StatsReply)]
        assert len(replies) == 2

    def test_cancel_subscription(self, wired):
        agent, enb, conn = wired
        enb.attach_ue(Ue("001", FixedCqi(9)), tti=0)
        master_send(conn, StatsRequest(
            header=Header(xid=5), report_type=int(ReportType.PERIODIC),
            period_ttis=1))
        agent.tick_rx(0)
        agent.tick_tx(0)
        master_send(conn, StatsRequest(
            header=Header(xid=5), report_type=int(ReportType.CANCEL)), now=1)
        agent.tick_rx(1)
        agent.tick_tx(1)
        replies = [m for m in master_recv(conn, 1)
                   if isinstance(m, StatsReply)]
        assert len(replies) == 1  # only the pre-cancel report


class TestCommands:
    def test_dl_command_stored_for_target(self, wired):
        agent, enb, conn = wired
        rnti = enb.attach_ue(Ue("001", FixedCqi(12)), tti=0)
        agent.mac.activate("dl_scheduling", "remote_stub")
        master_send(conn, DlMacCommand(
            cell_id=enb.cell().cell_id, target_tti=5,
            assignments=[DciSpec(rnti=rnti, n_prb=50, cqi_used=12)]))
        agent.tick_rx(0)
        assert agent.mac.remote_stub.pending() == 1

    def test_expired_command_counted(self, wired):
        agent, enb, conn = wired
        rnti = enb.attach_ue(Ue("001", FixedCqi(12)), tti=0)
        master_send(conn, DlMacCommand(
            cell_id=enb.cell().cell_id, target_tti=3,
            assignments=[DciSpec(rnti=rnti, n_prb=50, cqi_used=12)]), now=10)
        agent.tick_rx(10)
        assert agent.mac.remote_stub.stats.expired_on_arrival == 1

    def test_abs_pattern_config(self, wired):
        agent, enb, conn = wired
        master_send(conn, AbsPatternConfig(cell_id=enb.cell().cell_id,
                                           subframes=[1, 3, 5]))
        agent.tick_rx(0)
        assert enb.cell().muted_subframes == {1, 3, 5}


class TestDelegation:
    def test_vsf_update_caches_code(self, wired):
        agent, _, conn = wired
        master_send(conn, VsfUpdate(
            module="mac", operation="dl_scheduling", name="pushed_pf",
            blob=pack_vsf("scheduler:proportional_fair",
                          {"ewma_alpha": 0.2})))
        agent.tick_rx(0)
        assert "pushed_pf" in agent.mac.cached_names("dl_scheduling")
        # Pushed but not active until a policy swaps it in.
        assert agent.mac.active_name("dl_scheduling") == "local_rr"

    def test_policy_swaps_pushed_vsf(self, wired):
        agent, _, conn = wired
        master_send(conn, VsfUpdate(
            module="mac", operation="dl_scheduling", name="pushed_pf",
            blob=pack_vsf("scheduler:proportional_fair")))
        master_send(conn, PolicyReconfiguration(text=build_policy(
            "mac", "dl_scheduling", behavior="pushed_pf")))
        agent.tick_rx(0)
        assert agent.mac.active_name("dl_scheduling") == "pushed_pf"

    def test_policy_reconfigures_parameters(self, wired):
        agent, _, conn = wired
        master_send(conn, PolicyReconfiguration(text=build_policy(
            "mac", "dl_scheduling", behavior="local_pf",
            parameters={"ewma_alpha": 0.42})))
        agent.tick_rx(0)
        vsf = agent.mac.active_vsf("dl_scheduling")
        assert vsf.parameters["ewma_alpha"] == 0.42

    def test_unknown_module_counted_and_dropped(self, wired):
        # The hardened dispatch boundary: a command naming a module
        # this agent does not run is counted and dropped, not raised.
        agent, _, conn = wired
        master_send(conn, VsfUpdate(module="phy", operation="x", name="y",
                                    blob=pack_vsf("scheduler:null")))
        handled_before = agent.messages_handled
        agent.tick_rx(0)
        assert agent.dispatch_errors == 1
        assert agent.messages_handled == handled_before


class TestEvents:
    def test_attach_events_forwarded(self, wired):
        agent, enb, conn = wired
        enb.attach_ue(Ue("001", FixedCqi(15)), tti=0)
        agent.tick_tx(0)
        events = [m for m in master_recv(conn)
                  if isinstance(m, EventNotification)]
        assert any(e.event_type == int(EventType.RANDOM_ACCESS)
                   for e in events)

    def test_ue_attached_event_after_handshake(self, wired):
        agent, enb, conn = wired
        rnti = enb.attach_ue(Ue("001", FixedCqi(15)), tti=0)
        for t in range(60):
            if t >= 20:
                enb.enqueue_dl(rnti, 100, t)
            enb.tick(t)
            agent.tick_tx(t)
        events = [m for m in master_recv(conn, 60)
                  if isinstance(m, EventNotification)]
        assert any(e.event_type == int(EventType.UE_ATTACH) for e in events)


class TestStandalone:
    def test_agent_without_endpoint_runs_locally(self):
        enb = EnodeB(1)
        agent = FlexRanAgent(1, enb)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        for t in range(500):
            if t >= 20:
                enb.enqueue_dl(rnti, 3000, t)
            agent.tick_tx(t)
            agent.tick_rx(t)
            enb.tick(t)
        assert ue.rx_bytes_total > 0
        assert agent.mac.active_name("dl_scheduling") == "local_rr"


class TestRemoteStub:
    def test_missed_tti_counts(self):
        stub = RemoteSchedulingStub()
        ctx = SchedulingContext(tti=5, n_prb=50, ues=[], cell_id=10)
        assert stub(ctx) == []
        assert stub.stats.missed_ttis == 1

    def test_gc_drops_stale_entries(self):
        stub = RemoteSchedulingStub()
        stub.store(10, 5, [], now=0)
        ctx = SchedulingContext(tti=100, n_prb=50, ues=[], cell_id=10)
        stub(ctx)
        assert stub.pending() == 0
