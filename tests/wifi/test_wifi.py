"""Tests for the Wi-Fi substrate and the technology-agnostic agent."""

import pytest

from repro.core.policy import build_policy
from repro.core.protocol.messages import (
    ConfigRequest,
    Header,
    PolicyReconfiguration,
    ReportType,
    StatsReply,
    StatsRequest,
    ConfigReply,
    Hello,
)
from repro.net.transport import ControlConnection
from repro.wifi.agent import WifiAgent
from repro.wifi.ap import Station, WifiAp, phy_rate_mbps


def make_ap(snrs=(60.0, 20.0)):
    ap = WifiAp(1)
    stations = [Station(mac=f"02:00:00:00:00:0{i}", snr_db=snr)
                for i, snr in enumerate(snrs)]
    for s in stations:
        ap.associate(s)
    return ap, stations


def saturate(ap, stations, slots=2000, per_slot_bytes=8000):
    for t in range(slots):
        for s in stations:
            ap.enqueue(s.aid, per_slot_bytes, t)
        ap.tick(t)


class TestPhyRates:
    def test_rate_monotone_in_snr(self):
        rates = [phy_rate_mbps(snr) for snr in (0, 10, 20, 40, 70)]
        assert rates == sorted(rates)

    def test_out_of_range_snr_gets_zero(self):
        assert phy_rate_mbps(3.0) == 0.0

    def test_top_mcs(self):
        assert phy_rate_mbps(70.0) == 65.0


class TestWifiAp:
    def test_association_assigns_aids(self):
        ap, stations = make_ap()
        assert [s.aid for s in stations] == [1, 2]
        assert ap.station(1) is stations[0]

    def test_fair_airtime_shares_slots(self):
        ap, stations = make_ap(snrs=(60.0, 60.0))
        saturate(ap, stations)
        rates = [s.meter.rate_mbps(1999) for s in stations]
        assert rates[0] == pytest.approx(rates[1], rel=0.05)

    def test_airtime_fairness_favours_fast_station_in_throughput(self):
        # Equal airtime, unequal rates: the fast station gets more bits.
        ap, stations = make_ap(snrs=(60.0, 15.0))
        saturate(ap, stations)
        assert (stations[0].meter.total_bytes
                > 2 * stations[1].meter.total_bytes)

    def test_idle_slots_counted(self):
        ap, stations = make_ap()
        for t in range(100):
            ap.tick(t)
        assert ap.slots_idle == 100
        assert ap.slots_served == 0

    def test_contention_reduces_efficiency(self):
        def run(n_stations):
            ap = WifiAp(1)
            stations = [Station(mac=f"02::{i}", snr_db=60.0)
                        for i in range(n_stations)]
            for s in stations:
                ap.associate(s)
            saturate(ap, stations, slots=2000)
            return ap.delivered_bytes

        single = run(1)
        crowded = run(8)
        assert crowded < single  # aggregate suffers under contention

    def test_disassociate(self):
        ap, stations = make_ap()
        ap.disassociate(stations[0].aid)
        assert [s.aid for s in ap.stations_by_aid()] == [2]


class TestWifiAgent:
    def wired(self):
        ap, stations = make_ap(snrs=(60.0, 20.0))
        conn = ControlConnection()
        agent = WifiAgent(1, ap, endpoint=conn.agent_side)
        return ap, stations, agent, conn

    def test_hello_announces_wifi_capability(self):
        ap, stations, agent, conn = self.wired()
        agent.tick_tx(0)
        hello = [m for m in conn.master_side.receive(now=0)
                 if isinstance(m, Hello)][0]
        assert hello.capabilities == ["wifi_mac"]

    def test_stats_reporting_reuses_protocol(self):
        ap, stations, agent, conn = self.wired()
        conn.master_side.send(StatsRequest(
            header=Header(xid=1), report_type=int(ReportType.PERIODIC),
            period_ttis=1), now=0)
        agent.tick_rx(0)
        agent.tick_tx(0)
        reply = [m for m in conn.master_side.receive(now=0)
                 if isinstance(m, StatsReply)][0]
        assert len(reply.ue_reports) == 2
        # MCS index rides the CQI field; SNR rides the SINR field.
        assert reply.ue_reports[0].wb_cqi == 7
        assert reply.ue_reports[0].subband_sinr_db_x10 == [600]

    def test_config_reply_lists_stations(self):
        ap, stations, agent, conn = self.wired()
        conn.master_side.send(ConfigRequest(header=Header(xid=4)), now=0)
        agent.tick_rx(0)
        reply = [m for m in conn.master_side.receive(now=0)
                 if isinstance(m, ConfigReply)][0]
        assert [u.rnti for u in reply.ues] == [1, 2]
        assert reply.ues[0].imsi.startswith("02:")

    def test_policy_reconfiguration_swaps_wifi_vsf(self):
        """The paper's §7.2 point: the *same* policy mechanism drives a
        different technology's control module."""
        ap, stations, agent, conn = self.wired()
        assert agent.mac.active_name("station_scheduling") == "fair_airtime"
        conn.master_side.send(PolicyReconfiguration(text=build_policy(
            "wifi_mac", "station_scheduling", behavior="max_rate")), now=0)
        agent.tick_rx(0)
        assert agent.mac.active_name("station_scheduling") == "max_rate"

    def test_max_rate_vsf_starves_slow_station(self):
        ap, stations, agent, conn = self.wired()
        conn.master_side.send(PolicyReconfiguration(text=build_policy(
            "wifi_mac", "station_scheduling", behavior="max_rate")), now=0)
        agent.tick_rx(0)
        saturate(ap, stations, slots=1000)
        assert stations[0].meter.total_bytes > 0
        assert stations[1].meter.total_bytes == 0

    def test_unknown_module_in_policy_rejected(self):
        ap, stations, agent, conn = self.wired()
        conn.master_side.send(PolicyReconfiguration(text=build_policy(
            "pdcp", "x", behavior="y")), now=0)
        with pytest.raises(KeyError):
            agent.tick_rx(0)  # "no PDCP module for WiFi", literally
