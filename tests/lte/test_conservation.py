"""System-level conservation properties of the data plane.

Whatever the scheduler, channel or traffic pattern, application bytes
must be accounted for exactly: everything offered to an eNodeB is
either delivered to the UE, still queued, held in HARQ processes
awaiting feedback, or explicitly counted as dropped.
"""

from hypothesis import given, settings, strategies as st

from repro.lte.enodeb import EnodeB
from repro.lte.mac.amc import ErrorModel
from repro.lte.mac.schedulers import make_scheduler
from repro.lte.phy.channel import FixedCqi, SquareWaveCqi
from repro.lte.ue import Ue


def accounted_bytes(enb, rnti):
    """Delivered + queued + failed-in-HARQ + dropped for one UE.

    Successfully transmitted payload is delivered immediately but its
    HARQ buffer is only released on the ACK four TTIs later, so
    payload whose pending feedback is positive must not be counted a
    second time.
    """
    ue = enb.ue(rnti)
    cell_id = enb.primary_cell(rnti).cell_id
    delivered_unacked = {
        (c, r, p) for (_, c, r, p, ok) in enb._pending_feedback if ok}
    in_harq_failed = sum(
        sum(split.values())
        for key, split in enb._harq_payload.items()
        if key[0] == cell_id and key[1] == rnti
        and key not in delivered_unacked)
    rlc = enb.rlc[rnti]
    # SRB signalling is injected by RRC, not by the traffic source, so
    # track only the data bearer (lcid 3).
    drb = rlc.queue(3)
    return (ue.rx_bytes_total + drb.size_bytes + in_harq_failed
            + drb.dropped_bytes)


@settings(max_examples=15, deadline=None)
@given(
    cqi_hi=st.integers(min_value=5, max_value=15),
    cqi_drop=st.integers(min_value=0, max_value=4),
    flip_period=st.integers(min_value=13, max_value=200),
    scheduler=st.sampled_from(["round_robin", "fair_share",
                               "proportional_fair", "max_cqi"]),
    packets_per_tti=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=10),
)
def test_byte_conservation_under_errors(cqi_hi, cqi_drop, flip_period,
                                        scheduler, packets_per_tti, seed):
    """Bytes are conserved even with HARQ losses and stale-MCS errors."""
    cqi_lo = max(1, cqi_hi - cqi_drop)
    enb = EnodeB(1, seed=seed, error_model=ErrorModel(base_bler=0.05),
                 rlc_buffer_bytes=200_000)
    enb.dl_scheduler[enb.cell().cell_id] = make_scheduler(scheduler)
    ue = Ue("001", SquareWaveCqi(cqi_hi, cqi_lo, period_ttis=flip_period))
    rnti = enb.attach_ue(ue, tti=0)

    offered = 0
    for t in range(600):
        if t >= 30:
            for _ in range(packets_per_tti):
                enb.enqueue_dl(rnti, 1400, t)
                offered += 1400
        enb.tick(t)
    # Drain HARQ feedback in flight (no new traffic).
    for t in range(600, 640):
        enb.tick(t)
    assert accounted_bytes(enb, rnti) == offered


def test_conservation_with_harq_exhaustion():
    """Blocks dropped after MAX_HARQ_TX return their bytes to the queue
    (RLC recovery), so nothing vanishes even on a broken link."""
    enb = EnodeB(1, seed=1)
    # The eNodeB believes CQI 12 but the channel collapses to 6 between
    # two SRS refreshes: transmissions in the stale window overshoot by
    # 6 steps -> guaranteed failure, and their HARQ retransmissions
    # (same stale MCS) fail until the attempt budget is exhausted.
    ue = Ue("001", FixedCqi(12))
    rnti = enb.attach_ue(ue, tti=0)
    for t in range(105):
        enb.tick(t)  # attach completes at true CQI; last SRS at t=100
    ue.channel = FixedCqi(6)  # collapse mid-SRS-period

    offered = 0
    for t in range(105, 160):
        enb.enqueue_dl(rnti, 1400, t)
        offered += 1400
        enb.tick(t)
    for t in range(160, 300):
        enb.tick(t)
    # Some blocks were dropped by HARQ and requeued.
    assert enb.counters.tb_dropped > 0 or enb.counters.tb_err > 0
    assert accounted_bytes(enb, rnti) == offered


def test_counters_consistent():
    enb = EnodeB(1)
    ue = Ue("001", FixedCqi(10))
    rnti = enb.attach_ue(ue, tti=0)
    for t in range(500):
        if t >= 30:
            enb.enqueue_dl(rnti, 1400, t)
        enb.tick(t)
    c = enb.counters
    assert c.dl_assignments == c.tb_ok + c.tb_err
    assert c.dl_delivered_bytes == ue.rx_bytes_total
