"""Tests for the radio channel models."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.phy.channel import (
    FixedCqi,
    FixedSinr,
    GaussMarkovSinr,
    InterferenceChannel,
    PathlossChannel,
    SquareWaveCqi,
    TraceCqi,
    channel_for_cqi,
)
from repro.lte.phy.cqi import sinr_to_cqi


class TestFixedChannels:
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_fixed_cqi_reports_exactly(self, cqi, tti):
        assert FixedCqi(cqi).cqi(tti) == cqi

    def test_fixed_sinr_constant(self):
        ch = FixedSinr(10.0)
        assert ch.sinr_db(0) == ch.sinr_db(123456) == 10.0

    def test_channel_for_cqi_helper(self):
        assert channel_for_cqi(9).cqi(0) == 9

    def test_sinr_consistent_with_cqi(self):
        ch = FixedCqi(11)
        assert sinr_to_cqi(ch.sinr_db(0)) == 11


class TestSquareWave:
    def test_alternates_with_period(self):
        ch = SquareWaveCqi(10, 4, period_ttis=100)
        assert ch.cqi(0) == 10
        assert ch.cqi(99) == 10
        assert ch.cqi(100) == 4
        assert ch.cqi(199) == 4
        assert ch.cqi(200) == 10

    def test_start_low(self):
        ch = SquareWaveCqi(10, 4, period_ttis=50, start_high=False)
        assert ch.cqi(0) == 4
        assert ch.cqi(50) == 10

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            SquareWaveCqi(10, 4, period_ttis=0)


class TestTrace:
    def test_holds_until_change_point(self):
        ch = TraceCqi([(0, 5), (100, 9), (250, 3)])
        assert ch.cqi(0) == 5
        assert ch.cqi(99) == 5
        assert ch.cqi(100) == 9
        assert ch.cqi(249) == 9
        assert ch.cqi(250) == 3
        assert ch.cqi(10 ** 6) == 3

    def test_before_first_point_uses_first_value(self):
        ch = TraceCqi([(50, 8)])
        assert ch.cqi(0) == 8

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceCqi([])


class TestGaussMarkov:
    def test_deterministic_for_seed(self):
        a = GaussMarkovSinr(15.0, sigma_db=2.0, seed=42)
        b = GaussMarkovSinr(15.0, sigma_db=2.0, seed=42)
        assert [a.sinr_db(t) for t in range(100)] == \
               [b.sinr_db(t) for t in range(100)]

    def test_repeated_query_same_tti_is_stable(self):
        ch = GaussMarkovSinr(15.0, seed=1)
        assert ch.sinr_db(50) == ch.sinr_db(50)

    def test_mean_reversion(self):
        ch = GaussMarkovSinr(15.0, sigma_db=1.0, reversion=0.1, seed=3)
        values = [ch.sinr_db(t) for t in range(5000)]
        mean = sum(values) / len(values)
        assert abs(mean - 15.0) < 1.5

    def test_zero_sigma_converges_to_mean(self):
        ch = GaussMarkovSinr(10.0, sigma_db=0.0, reversion=0.5, seed=0)
        assert ch.sinr_db(200) == pytest.approx(10.0, abs=1e-6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GaussMarkovSinr(10.0, reversion=0.0)
        with pytest.raises(ValueError):
            GaussMarkovSinr(10.0, sigma_db=-1.0)


class TestPathloss:
    def test_sinr_decreases_with_distance(self):
        near = PathlossChannel(ue_xy=(200.0, 0.0))
        far = PathlossChannel(ue_xy=(2000.0, 0.0))
        assert near.sinr_db(0) > far.sinr_db(0)

    def test_position_callback(self):
        ch = PathlossChannel(position_fn=lambda tti: (100.0 + tti, 0.0))
        assert ch.sinr_db(0) > ch.sinr_db(5000)

    def test_set_position(self):
        ch = PathlossChannel(ue_xy=(100.0, 0.0))
        before = ch.sinr_db(0)
        ch.set_position((3000.0, 0.0))
        assert ch.sinr_db(0) < before

    def test_shadowing_redrawn_per_block(self):
        ch = PathlossChannel(ue_xy=(500.0, 0.0), shadowing_db=8.0, seed=5)
        # Same 100 ms block -> same shadowing -> same SINR.
        assert ch.sinr_db(10) == ch.sinr_db(20)
        # Values across many blocks differ (shadowing varies).
        values = {round(ch.sinr_db(t * 100), 6) for t in range(20)}
        assert len(values) > 1


class TestInterference:
    def test_two_states(self):
        ch = InterferenceChannel(20.0, 0.0)
        assert ch.sinr_db(0, interference_active=False) == 20.0
        assert ch.sinr_db(0, interference_active=True) == 0.0

    def test_default_assumes_interference(self):
        ch = InterferenceChannel(20.0, 0.0)
        assert ch.sinr_db(0) == 0.0

    def test_inverted_states_rejected(self):
        with pytest.raises(ValueError):
            InterferenceChannel(0.0, 20.0)

    def test_cqi_differs_between_states(self):
        ch = InterferenceChannel(23.0, -5.0)
        assert ch.cqi(0, interference_active=False) > ch.cqi(
            0, interference_active=True)
