"""Tests for the RRC state machine."""

import pytest

from repro.lte.rrc import (
    ATTACH_SIGNALLING_BYTES,
    ATTACH_TIMEOUT_TTIS,
    RA_DELAY_TTIS,
    RrcEntity,
    RrcEvent,
    RrcState,
)


@pytest.fixture
def rrc():
    return RrcEntity()


class TestAttach:
    def test_start_attach_enters_random_access(self, rrc):
        ctx = rrc.start_attach(70, tti=5)
        assert ctx.state is RrcState.RANDOM_ACCESS
        assert ctx.ra_tti == 5

    def test_duplicate_attach_rejected(self, rrc):
        rrc.start_attach(70, 0)
        with pytest.raises(ValueError):
            rrc.start_attach(70, 1)

    def test_setup_due_after_ra_delay(self, rrc):
        rrc.start_attach(70, 0)
        assert not rrc.setup_due(70, RA_DELAY_TTIS - 1)
        assert rrc.setup_due(70, RA_DELAY_TTIS)
        # only once
        assert not rrc.setup_due(70, RA_DELAY_TTIS + 1)
        assert rrc.context(70).state is RrcState.CONNECTING

    def test_connected_after_signalling_delivered(self, rrc):
        rrc.start_attach(70, 0)
        rrc.setup_due(70, RA_DELAY_TTIS)
        rrc.srb_delivered(70, ATTACH_SIGNALLING_BYTES - 1, 20)
        assert not rrc.is_connected(70)
        rrc.srb_delivered(70, 1, 21)
        assert rrc.is_connected(70)
        assert rrc.context(70).connected_tti == 21

    def test_timeout_fails_attach(self, rrc):
        rrc.start_attach(70, 0)
        assert rrc.check_timeouts(ATTACH_TIMEOUT_TTIS) == []
        assert rrc.check_timeouts(ATTACH_TIMEOUT_TTIS + 1) == [70]
        assert rrc.context(70).state is RrcState.FAILED

    def test_connected_ue_does_not_time_out(self, rrc):
        rrc.start_attach(70, 0)
        rrc.setup_due(70, RA_DELAY_TTIS)
        rrc.srb_delivered(70, ATTACH_SIGNALLING_BYTES, 20)
        assert rrc.check_timeouts(10 ** 6) == []


class TestEvents:
    def test_event_sequence(self, rrc):
        events = []
        rrc.subscribe(lambda ev, rnti, tti: events.append((ev, rnti)))
        rrc.start_attach(70, 0)
        rrc.setup_due(70, RA_DELAY_TTIS)
        rrc.srb_delivered(70, ATTACH_SIGNALLING_BYTES, 30)
        assert events == [(RrcEvent.RANDOM_ACCESS, 70),
                          (RrcEvent.UE_ATTACHED, 70)]

    def test_failure_event(self, rrc):
        events = []
        rrc.subscribe(lambda ev, rnti, tti: events.append(ev))
        rrc.start_attach(70, 0)
        rrc.check_timeouts(ATTACH_TIMEOUT_TTIS + 1)
        assert RrcEvent.ATTACH_FAILED in events

    def test_handover_event(self, rrc):
        events = []
        rrc.subscribe(lambda ev, rnti, tti: events.append(ev))
        rrc.start_attach(70, 0)
        rrc.complete_handover(70, 100)
        assert RrcEvent.HANDOVER_COMPLETE in events
        assert rrc.context(70).handovers == 1


class TestLifecycle:
    def test_release_removes_context(self, rrc):
        rrc.start_attach(70, 0)
        rrc.release(70)
        with pytest.raises(KeyError):
            rrc.context(70)

    def test_contexts_sorted(self, rrc):
        rrc.start_attach(75, 0)
        rrc.start_attach(71, 0)
        assert [c.rnti for c in rrc.contexts()] == [71, 75]

    def test_unknown_rnti_rejected(self, rrc):
        with pytest.raises(KeyError):
            rrc.context(99)
