"""Tests for SINR<->CQI mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.constants import CQI_SINR_THRESHOLDS_DB, CQI_TABLE
from repro.lte.phy.cqi import (
    clamp_cqi,
    cqi_efficiency,
    cqi_to_sinr_floor,
    degrade_cqi,
    sinr_to_cqi,
    validate_cqi,
)


class TestSinrToCqi:
    def test_very_low_sinr_is_out_of_range(self):
        assert sinr_to_cqi(-30.0) == 0

    def test_very_high_sinr_is_cqi_15(self):
        assert sinr_to_cqi(40.0) == 15

    def test_exact_threshold_reports_that_cqi(self):
        for cqi, thr in CQI_SINR_THRESHOLDS_DB.items():
            assert sinr_to_cqi(thr) == cqi

    def test_just_below_threshold_reports_lower_cqi(self):
        for cqi in range(2, 16):
            thr = CQI_SINR_THRESHOLDS_DB[cqi]
            assert sinr_to_cqi(thr - 0.01) == cqi - 1

    @given(st.floats(min_value=-40, max_value=40,
                     allow_nan=False, allow_infinity=False))
    def test_monotone_in_sinr(self, sinr):
        assert sinr_to_cqi(sinr) <= sinr_to_cqi(sinr + 1.0)

    @given(st.integers(min_value=0, max_value=15))
    def test_roundtrip_through_floor(self, cqi):
        assert sinr_to_cqi(cqi_to_sinr_floor(cqi) + 0.05) == cqi


class TestValidation:
    @pytest.mark.parametrize("bad", [-1, 16, 100, 2.5, "7", True])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            validate_cqi(bad)

    @pytest.mark.parametrize("good", list(range(16)))
    def test_accepts_valid(self, good):
        assert validate_cqi(good) == good

    def test_clamp(self):
        assert clamp_cqi(-5) == 0
        assert clamp_cqi(99) == 15
        assert clamp_cqi(7) == 7


class TestEfficiency:
    def test_matches_standard_table(self):
        assert cqi_efficiency(15) == pytest.approx(5.5547)
        assert cqi_efficiency(1) == pytest.approx(0.1523)

    def test_strictly_increasing(self):
        effs = [cqi_efficiency(c) for c in range(1, 16)]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_cqi0_has_zero_efficiency(self):
        assert cqi_efficiency(0) == 0.0

    def test_modulation_orders(self):
        assert CQI_TABLE[6].modulation == "QPSK"
        assert CQI_TABLE[7].modulation == "16QAM"
        assert CQI_TABLE[10].modulation == "64QAM"


class TestDegrade:
    def test_degrade_steps(self):
        assert degrade_cqi(10, 3) == 7

    def test_degrade_clamps_at_zero(self):
        assert degrade_cqi(2, 9) == 0

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            degrade_cqi(10, -1)
