"""Tests for DRX sleep cycles and carrier aggregation in the data plane."""

import pytest

from repro.lte.cell import CellConfig
from repro.lte.enodeb import EnodeB
from repro.lte.mac.drx import DrxConfig, DrxManager, DrxState
from repro.lte.phy.channel import FixedCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue


class TestDrxState:
    def test_no_config_always_awake(self):
        state = DrxState()
        assert all(state.is_awake(t) for t in range(200))

    def test_on_duration_window(self):
        state = DrxState(config=DrxConfig(cycle_ttis=40, on_duration_ttis=4,
                                          inactivity_ttis=0))
        assert state.is_awake(0)
        assert state.is_awake(3)
        assert not state.is_awake(4)
        assert not state.is_awake(39)
        assert state.is_awake(40)

    def test_inactivity_timer_extends_wakefulness(self):
        state = DrxState(config=DrxConfig(cycle_ttis=40, on_duration_ttis=4,
                                          inactivity_ttis=10))
        state.note_activity(3)
        assert state.is_awake(8)   # within inactivity window
        assert state.is_awake(13)  # boundary (<=)
        assert not state.is_awake(14)

    def test_accounting(self):
        state = DrxState(config=DrxConfig(cycle_ttis=10, on_duration_ttis=2,
                                          inactivity_ttis=0))
        for t in range(100):
            state.account(t)
        assert state.awake_ttis == 20
        assert state.asleep_ttis == 80
        assert state.awake_fraction() == pytest.approx(0.2)

    @pytest.mark.parametrize("kw", [
        dict(cycle_ttis=0),
        dict(cycle_ttis=10, on_duration_ttis=0),
        dict(cycle_ttis=10, on_duration_ttis=11),
        dict(cycle_ttis=10, inactivity_ttis=-1),
    ])
    def test_invalid_config(self, kw):
        defaults = dict(cycle_ttis=10, on_duration_ttis=2,
                        inactivity_ttis=0)
        defaults.update(kw)
        with pytest.raises(ValueError):
            DrxConfig(**defaults)


class TestDrxManager:
    def test_configure_and_disable(self):
        mgr = DrxManager()
        mgr.configure(70, DrxConfig(cycle_ttis=10, on_duration_ttis=2))
        assert mgr.enabled_rntis() == [70]
        assert not mgr.is_awake(70, 5)
        mgr.configure(70, None)
        assert mgr.is_awake(70, 5)
        assert mgr.enabled_rntis() == []

    def test_disable_drops_state_and_folds_energy_totals(self):
        # Regression: disabling DRX used to leave a zombie DrxState in
        # the manager (still visited by account_all every TTI) and its
        # awake/asleep counters vanished from the energy proxy.
        mgr = DrxManager()
        mgr.configure(70, DrxConfig(cycle_ttis=10, on_duration_ttis=2,
                                    inactivity_ttis=0))
        for tti in range(40):
            mgr.account_all(tti)
        state = mgr._states[70]
        awake, asleep = state.awake_ttis, state.asleep_ttis
        assert asleep > 0
        mgr.configure(70, None)
        # State dropped entirely: the per-TTI accounting loop must not
        # keep paying for a UE whose DRX is off.
        assert 70 not in mgr._states
        assert not mgr.is_configured(70)
        # ... but the energy totals survive in the retired counters.
        assert mgr.retired_awake_ttis == awake
        assert mgr.retired_asleep_ttis == asleep
        # Re-enabling starts fresh accounting; a later detach folds too.
        mgr.configure(70, DrxConfig(cycle_ttis=10, on_duration_ttis=2,
                                    inactivity_ttis=0))
        assert mgr._states[70].awake_ttis == 0
        for tti in range(10):
            mgr.account_all(tti)
        mgr.remove(70)
        assert 70 not in mgr._states
        assert mgr.retired_awake_ttis + mgr.retired_asleep_ttis \
            == awake + asleep + 10


class TestEnodebDrx:
    def build(self):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(12))
        rnti = enb.attach_ue(ue, tti=0)
        # Complete attachment before enabling DRX.
        for t in range(60):
            enb.tick(t)
        assert enb.rrc.is_connected(rnti)
        return enb, ue, rnti

    def test_sleeping_ue_not_scheduled(self):
        enb, ue, rnti = self.build()
        enb.set_drx(rnti, DrxConfig(cycle_ttis=100, on_duration_ttis=10,
                                    inactivity_ttis=0))
        # Enqueue while the UE is asleep (subframe 60-99 of the cycle).
        delivered_before = ue.rx_bytes_total
        enb.enqueue_dl(rnti, 1000, 60)
        for t in range(60, 95):
            enb.tick(t)
        assert ue.rx_bytes_total == delivered_before
        # Next on-duration: the data flows.
        for t in range(95, 115):
            enb.tick(t)
        assert ue.rx_bytes_total > delivered_before

    def test_awake_fraction_drops_when_idle(self):
        enb, ue, rnti = self.build()
        enb.set_drx(rnti, DrxConfig(cycle_ttis=80, on_duration_ttis=8,
                                    inactivity_ttis=10))
        for t in range(60, 2060):
            enb.tick(t)
        state = enb.drx.state(rnti)
        assert state.awake_fraction() < 0.2

    def test_unknown_rnti_rejected(self):
        enb = EnodeB(1)
        with pytest.raises(KeyError):
            enb.set_drx(99, None)


class TestCarrierAggregation:
    def build(self):
        enb = EnodeB(1, [CellConfig(cell_id=10), CellConfig(cell_id=11)])
        ue = Ue("001", FixedCqi(12))
        ue.carrier_channels[11] = FixedCqi(12)
        rnti = enb.attach_ue(ue, cell_id=10, tti=0)
        for t in range(60):
            enb.tick(t)
        return enb, ue, rnti

    def test_scell_activation_doubles_throughput(self):
        enb, ue, rnti = self.build()

        def saturate(start, end):
            begin = ue.rx_bytes_total
            for t in range(start, end):
                for _ in range(4):
                    enb.enqueue_dl(rnti, 1400, t)
                enb.tick(t)
            return (ue.rx_bytes_total - begin) * 8 / (end - start) / 1000

        single = saturate(60, 1060)
        enb.activate_scell(rnti, 11, tti=1060)
        dual = saturate(1060, 2060)
        assert single == pytest.approx(capacity_mbps(12, 50), rel=0.08)
        assert dual == pytest.approx(2 * capacity_mbps(12, 50), rel=0.08)

    def test_deactivation_returns_to_single_carrier(self):
        enb, ue, rnti = self.build()
        enb.activate_scell(rnti, 11, tti=60)
        assert enb.active_scells(rnti) == [11]
        enb.deactivate_scell(rnti, 11)
        assert enb.active_scells(rnti) == []
        assert rnti not in enb.cells[11].ues
        # Primary serving relationship is untouched.
        assert ue.serving_cell_id == 10

    def test_activation_is_idempotent(self):
        enb, ue, rnti = self.build()
        enb.activate_scell(rnti, 11, tti=60)
        enb.activate_scell(rnti, 11, tti=61)
        assert enb.active_scells(rnti) == [11]

    def test_pcell_cannot_be_scell(self):
        enb, ue, rnti = self.build()
        with pytest.raises(ValueError):
            enb.activate_scell(rnti, 10)

    def test_unknown_scell_rejected(self):
        enb, ue, rnti = self.build()
        with pytest.raises(KeyError):
            enb.activate_scell(rnti, 99)

    def test_per_carrier_channels(self):
        enb = EnodeB(1, [CellConfig(cell_id=10), CellConfig(cell_id=11)])
        ue = Ue("001", FixedCqi(12))
        ue.carrier_channels[11] = FixedCqi(5)
        rnti = enb.attach_ue(ue, cell_id=10, tti=0)
        enb.activate_scell(rnti, 11, tti=0)
        enb.cells[10].refresh_cqi(0, force=True)
        enb.cells[11].refresh_cqi(0, force=True)
        assert enb.cells[10].known_cqi[rnti] == 12
        assert enb.cells[11].known_cqi[rnti] == 5

    def test_detach_cleans_scell_state(self):
        enb, ue, rnti = self.build()
        enb.activate_scell(rnti, 11, tti=60)
        enb.detach_ue(rnti)
        assert rnti not in enb.cells[10].ues
        assert rnti not in enb.cells[11].ues
        for t in range(60, 100):
            enb.tick(t)  # no stale-feedback crash
