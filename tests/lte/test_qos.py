"""Tests for bearer QoS: profiles, token buckets, the QoS scheduler."""

import pytest

from repro.lte.enodeb import EnodeB
from repro.lte.mac.dci import SchedulingContext, UeView
from repro.lte.mac.qos import QosProfile, QosScheduler, parse_bearer_config
from repro.lte.phy.channel import FixedCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue


class TestQosProfile:
    def test_gbr_requires_rate(self):
        QosProfile(qci=1, gbr_mbps=1.0)
        with pytest.raises(ValueError):
            QosProfile(qci=1)
        with pytest.raises(ValueError):
            QosProfile(qci=1, gbr_mbps=0.0)

    def test_ngbr_rejects_rate(self):
        QosProfile(qci=9)
        with pytest.raises(ValueError):
            QosProfile(qci=9, gbr_mbps=1.0)

    def test_unknown_qci(self):
        with pytest.raises(ValueError):
            QosProfile(qci=42)

    def test_priorities_follow_23203(self):
        assert QosProfile(qci=1, gbr_mbps=0.1).priority == 2
        assert QosProfile(qci=5).priority == 1
        assert QosProfile(qci=9).priority == 9

    def test_parse_bearer_config(self):
        rnti, lcid, profile = parse_bearer_config("70:4:1:2000")
        assert (rnti, lcid) == (70, 4)
        assert profile.qci == 1
        assert profile.gbr_mbps == pytest.approx(2.0)
        rnti, lcid, profile = parse_bearer_config("71:3:9")
        assert profile.gbr_mbps is None
        with pytest.raises(ValueError):
            parse_bearer_config("70:4")


def view(rnti, queues, cqi=10, **labels):
    return UeView(rnti=rnti, queue_bytes=sum(queues.values()), cqi=cqi,
                  queues=dict(queues), labels=dict(labels))


class TestQosScheduler:
    def ctx(self, ues, bearer_qos, tti=0, n_prb=50):
        return SchedulingContext(tti=tti, n_prb=n_prb, ues=ues,
                                 bearer_qos=bearer_qos)

    def test_gbr_bearer_served_first(self):
        sched = QosScheduler()
        ues = [view(70, {4: 50_000}), view(71, {3: 50_000})]
        qos = {(70, 4): QosProfile(qci=1, gbr_mbps=5.0)}
        out = sched(self.ctx(ues, qos))
        gbr = [a for a in out if a.rnti == 70 and a.lcid == 4]
        assert gbr, "the GBR bearer must receive an assignment"

    def test_token_bucket_caps_gbr_rate(self):
        """A 2 Mb/s GBR bearer gets ~2 Mb/s worth of grants per second
        even with unlimited backlog."""
        sched = QosScheduler()
        qos = {(70, 4): QosProfile(qci=1, gbr_mbps=2.0)}
        granted = 0
        for t in range(1000):
            ues = [view(70, {4: 10 ** 7})]
            out = sched(self.ctx(ues, qos, tti=t))
            for a in out:
                if a.lcid == 4:
                    # Count the bytes the grant was sized for.
                    from repro.lte.phy.tbs import transport_block_bits
                    granted += transport_block_bits(a.cqi_used, a.n_prb) // 8
        granted_mbps = granted * 8 / 1000 / 1000
        assert granted_mbps == pytest.approx(2.0, rel=0.3)

    def test_priority_order_between_gbr_bearers(self):
        """Under PRB scarcity the higher-priority QCI wins."""
        sched = QosScheduler()
        qos = {(70, 4): QosProfile(qci=1, gbr_mbps=20.0),   # priority 2
               (71, 4): QosProfile(qci=4, gbr_mbps=20.0)}   # priority 5
        ues = [view(70, {4: 10 ** 7}), view(71, {4: 10 ** 7})]
        out = sched(self.ctx(ues, qos, n_prb=10))
        assert out and out[0].rnti == 70

    def test_best_effort_gets_leftovers(self):
        sched = QosScheduler()
        qos = {(70, 4): QosProfile(qci=1, gbr_mbps=1.0)}
        ues = [view(70, {4: 10 ** 6}), view(71, {3: 10 ** 6})]
        out = sched(self.ctx(ues, qos))
        assert any(a.rnti == 71 for a in out)

    def test_no_qos_config_degenerates_to_fair(self):
        sched = QosScheduler()
        ues = [view(70, {3: 10 ** 6}), view(71, {3: 10 ** 6})]
        out = sched(self.ctx(ues, {}))
        prbs = {a.rnti: a.n_prb for a in out}
        assert prbs[70] == prbs[71]

    def test_never_oversubscribes(self):
        sched = QosScheduler()
        qos = {(70 + i, 4): QosProfile(qci=1, gbr_mbps=10.0)
               for i in range(10)}
        ues = [view(70 + i, {3: 10 ** 6, 4: 10 ** 6}) for i in range(10)]
        for t in range(50):
            out = sched(self.ctx(ues, qos, tti=t))
            assert sum(a.n_prb for a in out) <= 50


class TestQosEndToEnd:
    def test_gbr_protected_under_congestion(self):
        """Offered load saturates the cell; the GBR bearer still gets
        its guaranteed rate while best-effort UEs absorb the loss."""
        enb = EnodeB(1)
        agent_ue = Ue("gbr", FixedCqi(10))
        others = [Ue(f"be{i}", FixedCqi(10)) for i in range(3)]
        gbr_rnti = enb.attach_ue(agent_ue, tti=0)
        be_rntis = [enb.attach_ue(u, tti=0) for u in others]
        enb.configure_bearer(gbr_rnti, 4, QosProfile(qci=1, gbr_mbps=3.0))
        enb.dl_scheduler[enb.cell().cell_id] = QosScheduler()

        cell_capacity = capacity_mbps(10, 50)  # ~12.3 Mb/s
        for t in range(6000):
            if t >= 50:
                # GBR flow offered exactly 3 Mb/s on lcid 4.
                if t % 4 == 0:
                    enb.enqueue_dl(gbr_rnti, 1500, t, lcid=4)
                # Each BE UE offered ~6 Mb/s: heavy congestion.
                for r in be_rntis:
                    if t % 2 == 0:
                        enb.enqueue_dl(r, 1500, t)
            enb.tick(t)
        gbr_mbps = agent_ue.meter.mean_mbps(6000)
        be_each = [u.meter.mean_mbps(6000) for u in others]
        assert gbr_mbps == pytest.approx(3.0, rel=0.1)
        # Best effort split the remainder roughly equally.
        for be in be_each:
            assert be < gbr_mbps + 1.0
        assert sum(be_each) + gbr_mbps <= cell_capacity * 1.05

    def test_bearer_config_over_protocol(self):
        from repro.core.agent import FlexRanAgent
        from repro.net.transport import ControlConnection
        from repro.core.controller import MasterController

        enb = EnodeB(1)
        conn = ControlConnection()
        agent = FlexRanAgent(1, enb, endpoint=conn.agent_side)
        master = MasterController()
        master.connect_agent(1, conn.master_side)
        rnti = enb.attach_ue(Ue("001", FixedCqi(10)), tti=0)
        master.northbound.set_bearer_qos(1, enb.cell().cell_id, rnti, 4,
                                         qci=1, gbr_mbps=2.0)
        agent.tick_rx(0)
        profile = enb.bearer_qos[(rnti, 4)]
        assert profile.qci == 1
        assert profile.gbr_mbps == pytest.approx(2.0)

    def test_invalid_bearer_config_rejected(self):
        enb = EnodeB(1)
        rnti = enb.attach_ue(Ue("001", FixedCqi(10)), tti=0)
        with pytest.raises(KeyError):
            enb.configure_bearer(999, 4, QosProfile(qci=9))
        with pytest.raises(ValueError):
            enb.configure_bearer(rnti, 1, QosProfile(qci=9))  # SRB
