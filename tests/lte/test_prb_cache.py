"""Queue->PRB threshold-table tests (the scheduler sizing cache).

``prbs_for_queue`` used to sit behind an ``lru_cache`` keyed on the
raw ``(cqi, queue_bytes)`` pair, which VBR/mixed traffic thrashed with
never-repeating byte counts.  The threshold table quantizes the key to
the PRB granularity the answer actually has; these tests pin the
equivalence with the exact computation, the bounded memory shape, the
hit/miss observability counters, and the per-Simulation reset.
"""

from hypothesis import given, strategies as st

from repro import obs
from repro.lte.mac import schedulers
from repro.lte.mac.schedulers import clear_caches, prbs_for_queue
from repro.lte.phy.tbs import prbs_needed
from repro.lte.rlc import RLC_HEADER_BYTES


def exact(cqi: int, queue_bytes: int) -> int:
    if queue_bytes <= 0:
        return 0
    return prbs_needed(cqi, (queue_bytes + RLC_HEADER_BYTES + 1) * 8)


class TestThresholdTable:
    def setup_method(self):
        clear_caches()

    @given(st.integers(min_value=1, max_value=15),
           st.integers(min_value=0, max_value=10 ** 5))
    def test_matches_exact_computation(self, cqi, queue_bytes):
        assert prbs_for_queue(cqi, queue_bytes) == exact(cqi, queue_bytes)

    def test_repeat_queries_hit_the_table(self):
        # Warm the table once, then check interleaved never-repeating
        # byte counts still resolve from it (the lru_cache failure
        # mode was a miss for every distinct byte value).
        prbs_for_queue(12, 50_000)
        with obs.enabled_scope(trace=False) as ob:
            for qb in range(1, 2_000, 7):
                assert prbs_for_queue(12, qb) == exact(12, qb)
            hits = ob.registry.counter("mac.sched.prb_cache.hits").value
            misses = ob.registry.counter("mac.sched.prb_cache.misses").value
        assert misses == 0
        assert hits == len(range(1, 2_000, 7))

    def test_table_growth_bounded_by_prb_count(self):
        clear_caches()
        for qb in range(1, 30_000, 11):
            prbs_for_queue(9, qb)
        table = schedulers._queue_thresholds[9]
        # Memory is one threshold per PRB level ever needed -- not one
        # entry per distinct queue_bytes value seen.
        assert len(table) == exact(9, 29_998)

    def test_miss_extends_then_hits(self):
        clear_caches()
        with obs.enabled_scope(trace=False) as ob:
            prbs_for_queue(12, 10_000)
            assert ob.registry.counter(
                "mac.sched.prb_cache.misses").value == 1
            prbs_for_queue(12, 9_000)  # smaller: covered by the extension
            assert ob.registry.counter(
                "mac.sched.prb_cache.hits").value == 1

    def test_clear_caches_resets_tables(self):
        prbs_for_queue(12, 10_000)
        assert schedulers._queue_thresholds
        clear_caches()
        assert not schedulers._queue_thresholds

    def test_new_simulation_clears_process_caches(self):
        from repro.sim.simulation import Simulation

        prbs_for_queue(12, 10_000)
        assert schedulers._queue_thresholds
        Simulation()
        # A fresh deployment must not inherit another simulation's
        # sizing caches (nor their hit-rate accounting skew).
        assert not schedulers._queue_thresholds

    def test_zero_and_negative_queue_need_no_prbs(self):
        assert prbs_for_queue(12, 0) == 0
        assert prbs_for_queue(12, -5) == 0
