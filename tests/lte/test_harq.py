"""Tests for HARQ entities and FDD timing."""

import pytest

from repro.lte.constants import HARQ_PROCESSES, HARQ_RTT_TTIS, MAX_HARQ_TX
from repro.lte.mac.harq import HarqEntity, HarqPool


def start_block(entity, tti=0, **kw):
    defaults = dict(pid=None, tb_bits=8000, payload_bytes=1000,
                    cqi_used=10, n_prb=10, lcid=3, tti=tti)
    defaults.update(kw)
    return entity.start(**defaults)


class TestHarqEntity:
    def test_all_processes_initially_free(self):
        e = HarqEntity(70)
        assert e.busy_count() == 0
        assert e.free_process().pid == 0

    def test_start_occupies_process(self):
        e = HarqEntity(70)
        proc = start_block(e)
        assert proc.busy and proc.attempt == 1
        assert e.busy_count() == 1

    def test_exhausting_processes(self):
        e = HarqEntity(70)
        for _ in range(HARQ_PROCESSES):
            start_block(e)
        assert e.free_process() is None
        with pytest.raises(RuntimeError):
            start_block(e)

    def test_ack_frees_process(self):
        e = HarqEntity(70)
        proc = start_block(e)
        assert e.feedback(proc.pid, ok=True) is None
        assert e.busy_count() == 0
        assert e.acked_blocks == 1

    def test_nack_marks_retx(self):
        e = HarqEntity(70)
        proc = start_block(e)
        assert e.feedback(proc.pid, ok=False) is None
        assert proc.needs_retx
        assert e.nacked_blocks == 1

    def test_retx_timing_respects_harq_rtt(self):
        e = HarqEntity(70)
        proc = start_block(e, tti=100)
        e.feedback(proc.pid, ok=False)
        assert e.pending_retx(100 + HARQ_RTT_TTIS - 1) == []
        pending = e.pending_retx(100 + HARQ_RTT_TTIS)
        assert len(pending) == 1
        assert pending[0].attempt == 2
        assert pending[0].tb_bits == 8000

    def test_retransmit_increments_attempt(self):
        e = HarqEntity(70)
        proc = start_block(e, tti=0)
        e.feedback(proc.pid, ok=False)
        proc2 = e.retransmit(proc.pid, tti=8)
        assert proc2.attempt == 2
        assert proc2.awaiting_feedback

    def test_drop_after_max_attempts(self):
        e = HarqEntity(70)
        proc = start_block(e, tti=0)
        drop = None
        tti = 0
        for attempt in range(MAX_HARQ_TX):
            drop = e.feedback(proc.pid, ok=False)
            if attempt < MAX_HARQ_TX - 1:
                assert drop is None
                tti += HARQ_RTT_TTIS
                e.retransmit(proc.pid, tti)
        assert drop is not None
        assert drop.payload_bytes == 1000
        assert e.dropped_blocks == 1
        assert e.busy_count() == 0

    def test_unexpected_feedback_rejected(self):
        e = HarqEntity(70)
        with pytest.raises(RuntimeError):
            e.feedback(0, ok=True)

    def test_retransmit_without_pending_rejected(self):
        e = HarqEntity(70)
        proc = start_block(e)
        with pytest.raises(RuntimeError):
            e.retransmit(proc.pid, tti=8)

    def test_concurrent_processes_independent(self):
        e = HarqEntity(70)
        p0 = start_block(e, tti=0)
        p1 = start_block(e, tti=1, payload_bytes=500)
        assert p0.pid != p1.pid
        e.feedback(p0.pid, ok=True)
        assert e.busy_count() == 1
        assert e.processes[p1.pid].payload_bytes == 500


class TestHarqPool:
    def test_entity_per_rnti(self):
        pool = HarqPool()
        assert pool.entity(70) is pool.entity(70)
        assert pool.entity(70) is not pool.entity(71)

    def test_all_pending_retx_ordered(self):
        pool = HarqPool()
        for rnti in (72, 70):
            proc = start_block(pool.entity(rnti), tti=0)
            pool.entity(rnti).feedback(proc.pid, ok=False)
        pending = pool.all_pending_retx(HARQ_RTT_TTIS)
        assert [p.rnti for p in pending] == [70, 72]

    def test_remove(self):
        pool = HarqPool()
        proc = start_block(pool.entity(70), tti=0)
        pool.entity(70).feedback(proc.pid, ok=False)
        pool.remove(70)
        assert pool.all_pending_retx(100) == []
