"""Tests for the UE model, rate meter, and cell state."""

import pytest

from repro.lte.cell import Cell, CellConfig
from repro.lte.constants import SRS_PERIOD_TTIS
from repro.lte.phy.channel import FixedCqi, InterferenceChannel, SquareWaveCqi
from repro.lte.phy.cqi import cqi_to_sinr_floor
from repro.lte.ue import RateMeter, Ue


class TestRateMeter:
    def test_rate_over_window(self):
        m = RateMeter(window_ttis=1000)
        for t in range(1000):
            m.add(1000, t)  # 1000 B/ms = 8 Mb/s
        assert m.rate_mbps(999) == pytest.approx(8.0, rel=0.01)

    def test_old_samples_evicted(self):
        m = RateMeter(window_ttis=100)
        m.add(10_000, 0)
        assert m.rate_mbps(50) > 0
        assert m.rate_mbps(500) == 0.0

    def test_mean_mbps(self):
        m = RateMeter()
        m.add(125_000, 0)  # 1 Mb
        assert m.mean_mbps(1000) == pytest.approx(1.0)
        assert m.mean_mbps(0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RateMeter(0)
        with pytest.raises(ValueError):
            RateMeter().add(-1, 0)


class TestUe:
    def test_delivery_accounting_and_callbacks(self):
        ue = Ue("001", FixedCqi(10))
        got = []
        ue.on_delivery(lambda n, t: got.append((n, t)))
        ue.deliver(500, 10)
        ue.deliver(0, 11)  # ignored
        assert ue.rx_bytes_total == 500
        assert got == [(500, 10)]

    def test_series_recording_opt_in(self):
        quiet = Ue("001", FixedCqi(10))
        quiet.deliver(100, 0)
        assert quiet.delivery_series == []
        loud = Ue("002", FixedCqi(10), record_series=True)
        loud.deliver(100, 5)
        assert loud.delivery_series == [(5, 100)]

    def test_uplink_buffering(self):
        ue = Ue("001", FixedCqi(10))
        ue.generate_ul(1000)
        assert ue.ul_backlog_bytes == 1000
        assert ue.send_ul(600, 0) == 600
        assert ue.ul_backlog_bytes == 400
        assert ue.send_ul(600, 1) == 400
        assert ue.ul_sent_bytes == 1000

    def test_measured_cqi_tracks_channel(self):
        ue = Ue("001", SquareWaveCqi(10, 4, period_ttis=10))
        assert ue.measured_cqi(0) == 10
        assert ue.measured_cqi(10) == 4

    def test_default_channel_is_cqi15(self):
        assert Ue("001").measured_cqi(0) == 15

    def test_labels_copied(self):
        labels = {"operator": "mno"}
        ue = Ue("001", FixedCqi(10), labels=labels)
        labels["operator"] = "other"
        assert ue.labels["operator"] == "mno"


class TestCellConfig:
    def test_prb_mapping(self):
        cfg = CellConfig(cell_id=1, dl_bandwidth_mhz=10.0)
        assert cfg.n_prb_dl == 50
        assert CellConfig(cell_id=1, dl_bandwidth_mhz=20.0).n_prb_dl == 100

    def test_nonstandard_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            CellConfig(cell_id=1, dl_bandwidth_mhz=7.0).n_prb_dl


class TestCell:
    def make_cell(self):
        return Cell(CellConfig(cell_id=10))

    def test_add_remove_ue(self):
        cell = self.make_cell()
        ue = Ue("001", FixedCqi(10))
        cell.add_ue(70, ue)
        assert ue.serving_cell_id == 10
        assert cell.rntis() == [70]
        assert cell.remove_ue(70) is ue
        assert cell.rntis() == []

    def test_duplicate_rnti_rejected(self):
        cell = self.make_cell()
        cell.add_ue(70, Ue("001"))
        with pytest.raises(ValueError):
            cell.add_ue(70, Ue("002"))

    def test_cqi_refresh_period(self):
        cell = self.make_cell()
        cell.add_ue(70, Ue("001", SquareWaveCqi(
            10, 4, period_ttis=SRS_PERIOD_TTIS)))
        cell.refresh_cqi(0, force=True)
        assert cell.known_cqi[70] == 10
        # Channel already flipped at tti 10+? No: refresh within the SRS
        # period keeps the stale value even though the channel moved.
        cell.refresh_cqi(SRS_PERIOD_TTIS - 1)
        assert cell.known_cqi[70] == 10
        cell.refresh_cqi(SRS_PERIOD_TTIS)
        assert cell.known_cqi[70] == 4

    def test_abs_pattern(self):
        cell = self.make_cell()
        cell.set_abs_pattern([1, 3])
        assert cell.is_muted(1) and cell.is_muted(13)
        assert not cell.is_muted(2)
        with pytest.raises(ValueError):
            cell.set_abs_pattern([12])

    def test_interference_scheduling_cqi(self):
        aggressor = Cell(CellConfig(cell_id=20))
        victim = self.make_cell()
        victim.interference_source = aggressor
        ue = Ue("001", InterferenceChannel(
            cqi_to_sinr_floor(12) + 0.1, cqi_to_sinr_floor(2) + 0.1))
        victim.add_ue(70, ue)
        victim.refresh_cqi(0, force=True)
        assert victim.known_cqi[70] == 2
        assert victim.known_cqi_clear[70] == 12
        # Aggressor silent in subframe 1 -> clear CQI applies.
        aggressor.set_abs_pattern([1])
        assert victim.scheduling_cqi(70, 1) == 12
        assert victim.scheduling_cqi(70, 2) == 2

    def test_actual_cqi_depends_on_real_transmission(self):
        aggressor = Cell(CellConfig(cell_id=20))
        victim = self.make_cell()
        victim.interference_source = aggressor
        ue = Ue("001", InterferenceChannel(
            cqi_to_sinr_floor(12) + 0.1, cqi_to_sinr_floor(2) + 0.1))
        victim.add_ue(70, ue)
        aggressor.mark_transmission(100, True)
        assert victim.actual_cqi(70, 100) == 2
        aggressor.mark_transmission(101, False)
        assert victim.actual_cqi(70, 101) == 12

    def test_no_interferer_means_clear(self):
        cell = self.make_cell()
        cell.add_ue(70, Ue("001", FixedCqi(9)))
        cell.refresh_cqi(0, force=True)
        assert cell.scheduling_cqi(70, 0) == 9
        assert cell.actual_cqi(70, 0) == 9
