"""Tests for RLC and PDCP entities."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.mac.queues import DEFAULT_LCID, SRB_LCID
from repro.lte.pdcp import PDCP_HEADER_BYTES, PDCP_SN_MODULUS, PdcpEntity
from repro.lte.rlc import RLC_HEADER_BYTES, RlcEntity


class TestPdcp:
    def test_ingress_adds_header(self):
        pdcp = PdcpEntity(70)
        assert pdcp.ingress(3, 1000) == 1000 + PDCP_HEADER_BYTES

    def test_sequence_numbers_advance_and_wrap(self):
        pdcp = PdcpEntity(70)
        for _ in range(PDCP_SN_MODULUS + 2):
            pdcp.ingress(3, 10)
        assert pdcp.tx_sn(3) == 2

    def test_per_bearer_sequencing(self):
        pdcp = PdcpEntity(70)
        pdcp.ingress(3, 10)
        pdcp.ingress(4, 10)
        pdcp.ingress(4, 10)
        assert pdcp.tx_sn(3) == 1
        assert pdcp.tx_sn(4) == 2

    def test_egress_strips_header(self):
        pdcp = PdcpEntity(70)
        assert pdcp.egress(3, 1002) == 1000

    def test_stats_accumulate(self):
        pdcp = PdcpEntity(70)
        pdcp.ingress(3, 500)
        pdcp.ingress(3, 300)
        pdcp.egress(3, 400)
        st3 = pdcp.stats[3]
        assert st3.tx_sdus == 2 and st3.tx_bytes == 800
        assert st3.rx_sdus == 1 and st3.rx_bytes == 400 - PDCP_HEADER_BYTES

    def test_invalid_sdu_rejected(self):
        with pytest.raises(ValueError):
            PdcpEntity(70).ingress(3, 0)


class TestRlc:
    def test_enqueue_dequeue(self):
        rlc = RlcEntity(70)
        assert rlc.enqueue(1000, tti=0)
        assert rlc.buffer_bytes() == 1000
        got = rlc.dequeue(500, tti=1, lcid=DEFAULT_LCID)
        assert got == 500 - RLC_HEADER_BYTES
        assert rlc.buffer_bytes() == 1000 - got

    def test_tiny_budget_yields_nothing(self):
        rlc = RlcEntity(70)
        rlc.enqueue(100, 0)
        assert rlc.dequeue(RLC_HEADER_BYTES, 0, DEFAULT_LCID) == 0

    def test_priority_drains_srb_first(self):
        rlc = RlcEntity(70)
        rlc.enqueue(100, 0, lcid=SRB_LCID)
        rlc.enqueue(100, 0, lcid=DEFAULT_LCID)
        taken = rlc.dequeue_priority(110, tti=1)
        assert SRB_LCID in taken
        assert taken[SRB_LCID] == 100
        assert taken.get(DEFAULT_LCID, 0) < 100

    def test_priority_spans_bearers(self):
        rlc = RlcEntity(70)
        rlc.enqueue(50, 0, lcid=SRB_LCID)
        rlc.enqueue(500, 0, lcid=DEFAULT_LCID)
        taken = rlc.dequeue_priority(10_000, tti=1)
        assert taken[SRB_LCID] == 50
        assert taken[DEFAULT_LCID] == 500

    def test_buffer_limit_drops(self):
        rlc = RlcEntity(70, buffer_limit_bytes=1000)
        assert rlc.enqueue(900, 0)
        assert not rlc.enqueue(200, 0)
        assert rlc.stats.dropped_sdus == 1
        assert rlc.stats.dropped_bytes == 200

    def test_unbounded_buffer(self):
        rlc = RlcEntity(70, buffer_limit_bytes=None)
        for _ in range(100):
            assert rlc.enqueue(10 ** 6, 0)

    def test_requeue_front(self):
        rlc = RlcEntity(70)
        rlc.enqueue(100, 0)
        rlc.requeue_front(40, 1, DEFAULT_LCID)
        assert rlc.buffer_bytes() == 140
        assert rlc.stats.requeued_bytes == 40

    @given(st.lists(st.integers(min_value=1, max_value=3000), max_size=30),
           st.lists(st.integers(min_value=3, max_value=5000), max_size=30))
    def test_conservation(self, ins, outs):
        rlc = RlcEntity(70, buffer_limit_bytes=None)
        for size in ins:
            rlc.enqueue(size, 0)
        for budget in outs:
            rlc.dequeue(budget, 0, DEFAULT_LCID)
        assert (rlc.stats.bytes_in
                == rlc.stats.bytes_out + rlc.buffer_bytes())
