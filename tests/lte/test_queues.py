"""Tests for transmission queues, including property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.mac.queues import DEFAULT_LCID, QueueSet, TransmissionQueue


class TestTransmissionQueue:
    def test_starts_empty(self):
        q = TransmissionQueue()
        assert q.size_bytes == 0
        assert not q
        assert len(q) == 0
        assert q.head_of_line_tti() is None

    def test_push_and_total(self):
        q = TransmissionQueue()
        assert q.push(100, tti=1)
        assert q.push(200, tti=2)
        assert q.size_bytes == 300
        assert q.head_of_line_tti() == 1

    def test_pop_exact_packet(self):
        q = TransmissionQueue()
        q.push(100, 0)
        assert q.pop_bytes(100, 1) == 100
        assert q.size_bytes == 0

    def test_pop_segments_head_packet(self):
        q = TransmissionQueue()
        q.push(1000, 0)
        assert q.pop_bytes(300, 1) == 300
        assert q.size_bytes == 700
        assert len(q) == 1  # remainder stays at head

    def test_pop_spans_packets(self):
        q = TransmissionQueue()
        q.push(100, 0)
        q.push(100, 0)
        q.push(100, 0)
        assert q.pop_bytes(250, 1) == 250
        assert q.size_bytes == 50

    def test_pop_more_than_available(self):
        q = TransmissionQueue()
        q.push(80, 0)
        assert q.pop_bytes(500, 1) == 80

    def test_overflow_drops_tail(self):
        q = TransmissionQueue(limit_bytes=250)
        assert q.push(200, 0)
        assert not q.push(100, 0)
        assert q.size_bytes == 200
        assert q.dropped_packets == 1
        assert q.dropped_bytes == 100

    def test_push_front_ignores_limit(self):
        q = TransmissionQueue(limit_bytes=100)
        q.push(100, 0)
        q.push_front(50, 0)
        assert q.size_bytes == 150
        assert q.pop_bytes(50, 1) == 50  # front bytes come out first

    def test_clear(self):
        q = TransmissionQueue()
        q.push(123, 0)
        assert q.clear() == 123
        assert q.size_bytes == 0

    def test_invalid_sizes_rejected(self):
        q = TransmissionQueue()
        with pytest.raises(ValueError):
            q.push(0, 0)
        with pytest.raises(ValueError):
            q.pop_bytes(-1, 0)
        with pytest.raises(ValueError):
            TransmissionQueue(limit_bytes=0)

    @given(st.lists(st.integers(min_value=1, max_value=2000), max_size=40),
           st.lists(st.integers(min_value=0, max_value=3000), max_size=40))
    def test_byte_conservation(self, pushes, pops):
        """enqueued == dequeued + backlog, always."""
        q = TransmissionQueue()
        for i, size in enumerate(pushes):
            q.push(size, i)
        for i, budget in enumerate(pops):
            q.pop_bytes(budget, i)
        assert q.enqueued_bytes == q.dequeued_bytes + q.size_bytes

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=1500)),
                    max_size=60))
    def test_size_never_negative(self, ops):
        q = TransmissionQueue(limit_bytes=5000)
        for push, amount in ops:
            if push:
                q.push(amount, 0)
            else:
                q.pop_bytes(amount, 0)
            assert q.size_bytes >= 0
            assert (q.size_bytes > 0) == bool(q)


class TestQueueSet:
    def test_creates_queues_on_demand(self):
        qs = QueueSet()
        qs.queue(1).push(10, 0)
        qs.queue(3).push(20, 0)
        assert qs.lcids() == [1, 3]
        assert qs.total_bytes() == 30
        assert qs.sizes() == {1: 10, 3: 20}

    def test_default_lcid(self):
        qs = QueueSet()
        qs.queue().push(99, 0)
        assert qs.sizes() == {DEFAULT_LCID: 99}

    def test_shared_limit_applied_per_queue(self):
        qs = QueueSet(limit_bytes=100)
        assert qs.queue(3).push(100, 0)
        assert not qs.queue(3).push(1, 0)
