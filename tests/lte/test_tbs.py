"""Tests for transport block sizing and the capacity calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.phy.tbs import capacity_mbps, prbs_needed, transport_block_bits


class TestTransportBlockBits:
    def test_zero_for_cqi0(self):
        assert transport_block_bits(0, 50) == 0

    def test_zero_for_zero_prbs(self):
        assert transport_block_bits(15, 0) == 0

    def test_negative_prbs_rejected(self):
        with pytest.raises(ValueError):
            transport_block_bits(15, -1)

    @given(st.integers(min_value=1, max_value=15),
           st.integers(min_value=1, max_value=100))
    def test_monotone_in_prbs(self, cqi, n_prb):
        assert (transport_block_bits(cqi, n_prb)
                <= transport_block_bits(cqi, n_prb + 1))

    @given(st.integers(min_value=1, max_value=14),
           st.integers(min_value=1, max_value=100))
    def test_monotone_in_cqi(self, cqi, n_prb):
        assert (transport_block_bits(cqi, n_prb)
                <= transport_block_bits(cqi + 1, n_prb))

    @given(st.integers(min_value=1, max_value=15),
           st.integers(min_value=1, max_value=100))
    def test_uplink_derated(self, cqi, n_prb):
        assert (transport_block_bits(cqi, n_prb, uplink=True)
                < transport_block_bits(cqi, n_prb))


class TestCalibration:
    """The model is calibrated against the paper's measured ceilings."""

    def test_downlink_ceiling_near_25_mbps(self):
        # Section 5.4: the testbed tops out around 25 Mb/s downlink.
        assert capacity_mbps(15, 50) == pytest.approx(25.0, rel=0.03)

    def test_uplink_ceiling_near_18_mbps(self):
        # Fig 6b: uplink around 17-18 Mb/s.
        assert capacity_mbps(15, 50, uplink=True) == pytest.approx(18.0, rel=0.05)

    def test_cqi_ratio_matches_spectral_efficiency(self):
        ratio = capacity_mbps(10, 50) / capacity_mbps(2, 50)
        assert ratio == pytest.approx(2.7305 / 0.2344, rel=0.02)


class TestPrbsNeeded:
    def test_zero_bits_needs_zero_prbs(self):
        assert prbs_needed(12, 0) == 0

    def test_cqi0_rejected(self):
        with pytest.raises(ValueError):
            prbs_needed(0, 1000)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            prbs_needed(12, -1)

    @given(st.integers(min_value=1, max_value=15),
           st.integers(min_value=1, max_value=10 ** 6))
    def test_allocation_is_sufficient_and_tight(self, cqi, bits):
        n = prbs_needed(cqi, bits)
        assert transport_block_bits(cqi, n) >= bits
        if n > 1:
            assert transport_block_bits(cqi, n - 1) < bits
