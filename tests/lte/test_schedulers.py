"""Tests for downlink scheduling algorithms, including invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.mac.dci import PendingRetx, SchedulingContext, UeView
from repro.lte.mac.schedulers import (
    FairShareScheduler,
    GroupScheduler,
    MaxCqiScheduler,
    NullScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SlicedScheduler,
    _greedy_fill,
    make_scheduler,
    schedule_retransmissions,
)


def ctx_with(ues, n_prb=50, tti=0, pending_retx=None):
    return SchedulingContext(tti=tti, n_prb=n_prb, ues=ues,
                             pending_retx=pending_retx or [])


def views(n, queue=10 ** 6, cqi=10, labels=None):
    return [UeView(rnti=70 + i, queue_bytes=queue, cqi=cqi,
                   labels=dict(labels or {})) for i in range(n)]


ALL_SCHEDULERS = [RoundRobinScheduler, FairShareScheduler,
                  ProportionalFairScheduler, MaxCqiScheduler]


@pytest.mark.parametrize("cls", ALL_SCHEDULERS)
class TestCommonInvariants:
    def test_never_oversubscribes(self, cls):
        out = cls()(ctx_with(views(8), n_prb=50))
        assert sum(a.n_prb for a in out) <= 50

    def test_empty_cell_schedules_nothing(self, cls):
        assert cls()(ctx_with([])) == []

    def test_skips_cqi0_ues(self, cls):
        out = cls()(ctx_with(views(3, cqi=0)))
        assert out == []

    def test_skips_empty_queues(self, cls):
        out = cls()(ctx_with(views(3, queue=0)))
        assert out == []

    def test_retransmissions_first(self, cls):
        retx = [PendingRetx(rnti=99, harq_pid=1, n_prb=10, cqi_used=9,
                            tb_bits=5000, attempt=2)]
        out = cls()(ctx_with(views(2), pending_retx=retx))
        assert out[0].is_retx and out[0].rnti == 99 and out[0].harq_pid == 1


class TestRoundRobin:
    def test_saturated_rotates_between_ttis(self):
        sched = RoundRobinScheduler()
        first = sched(ctx_with(views(3), tti=0))
        second = sched(ctx_with(views(3), tti=1))
        assert first[0].rnti != second[0].rnti

    def test_small_queues_pack_multiple_ues(self):
        out = RoundRobinScheduler()(ctx_with(views(3, queue=500)))
        assert len(out) == 3

    def test_eventually_serves_everyone(self):
        sched = RoundRobinScheduler()
        served = set()
        for tti in range(10):
            for a in sched(ctx_with(views(5), tti=tti)):
                served.add(a.rnti)
        assert served == {70, 71, 72, 73, 74}


class TestFairShare:
    def test_equal_split_saturated(self):
        out = FairShareScheduler()(ctx_with(views(5), n_prb=50))
        assert len(out) == 5
        assert all(a.n_prb == 10 for a in out)

    def test_more_ues_than_prbs(self):
        out = FairShareScheduler()(ctx_with(views(60, queue=10 ** 6), n_prb=50))
        assert sum(a.n_prb for a in out) <= 50
        assert all(a.n_prb >= 1 for a in out)


class TestProportionalFair:
    def test_favours_better_channel_long_run(self):
        sched = ProportionalFairScheduler(ewma_alpha=0.1)
        good = UeView(rnti=70, queue_bytes=10 ** 9, cqi=15)
        bad = UeView(rnti=71, queue_bytes=10 ** 9, cqi=3)
        served_bits = {70: 0, 71: 0}
        for tti in range(500):
            for a in sched(ctx_with([good, bad])):
                served_bits[a.rnti] += a.n_prb * a.cqi_used
        assert served_bits[70] > served_bits[71]

    def test_does_not_starve_weak_ue(self):
        sched = ProportionalFairScheduler(ewma_alpha=0.1)
        good = UeView(rnti=70, queue_bytes=10 ** 9, cqi=15)
        bad = UeView(rnti=71, queue_bytes=10 ** 9, cqi=3)
        served = {70: 0, 71: 0}
        for tti in range(500):
            for a in sched(ctx_with([good, bad])):
                served[a.rnti] += 1
        assert served[71] > 0

    def test_parameter_reconfiguration(self):
        sched = ProportionalFairScheduler()
        sched.set_parameter("ewma_alpha", 0.5)
        assert sched.parameters["ewma_alpha"] == 0.5
        with pytest.raises(KeyError):
            sched.set_parameter("nope", 1)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(ewma_alpha=0.0)


class TestMaxCqi:
    def test_best_channel_served_first(self):
        ues = [UeView(rnti=70, queue_bytes=10 ** 9, cqi=5),
               UeView(rnti=71, queue_bytes=10 ** 9, cqi=15)]
        out = MaxCqiScheduler()(ctx_with(ues))
        assert out[0].rnti == 71


class TestSliced:
    def test_respects_fractions(self):
        sched = SlicedScheduler({"mno": 0.7, "mvno": 0.3})
        ues = (views(3, labels={"operator": "mno"})
               + [UeView(rnti=80 + i, queue_bytes=10 ** 6, cqi=10,
                         labels={"operator": "mvno"}) for i in range(3)])
        out = sched(ctx_with(ues, n_prb=50))
        mno_prbs = sum(a.n_prb for a in out if a.rnti < 80)
        mvno_prbs = sum(a.n_prb for a in out if a.rnti >= 80)
        assert mno_prbs == 35
        assert mvno_prbs == 15

    def test_runtime_fraction_change(self):
        sched = SlicedScheduler({"mno": 0.7, "mvno": 0.3})
        sched.set_parameter("fractions", {"mno": 0.4, "mvno": 0.6})
        ues = (views(2, labels={"operator": "mno"})
               + [UeView(rnti=90, queue_bytes=10 ** 6, cqi=10,
                         labels={"operator": "mvno"})])
        out = sched(ctx_with(ues, n_prb=50))
        mvno_prbs = sum(a.n_prb for a in out if a.rnti == 90)
        assert mvno_prbs == 30

    def test_unlabelled_ues_not_scheduled(self):
        sched = SlicedScheduler({"mno": 1.0})
        out = sched(ctx_with(views(2)))  # no operator label
        assert out == []

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            SlicedScheduler({"a": 0.7, "b": 0.5})
        with pytest.raises(ValueError):
            SlicedScheduler({})
        with pytest.raises(ValueError):
            SlicedScheduler({"a": -0.1})

    def test_per_slice_policies(self):
        sched = SlicedScheduler({"mno": 0.5, "mvno": 0.5},
                                policies={"mvno": "group_based"})
        assert isinstance(sched.inner_scheduler("mvno"), GroupScheduler)
        assert isinstance(sched.inner_scheduler("mno"), FairShareScheduler)


class TestGroup:
    def test_premium_gets_more(self):
        sched = GroupScheduler(premium_fraction=0.7)
        ues = ([UeView(rnti=70 + i, queue_bytes=10 ** 6, cqi=10,
                       labels={"group": "premium"}) for i in range(2)]
               + [UeView(rnti=80 + i, queue_bytes=10 ** 6, cqi=10,
                         labels={"group": "secondary"}) for i in range(2)])
        out = sched(ctx_with(ues, n_prb=50))
        premium = sum(a.n_prb for a in out if a.rnti < 80)
        secondary = sum(a.n_prb for a in out if a.rnti >= 80)
        assert premium == 35 and secondary == 15

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            GroupScheduler(premium_fraction=1.5)


class TestRegistry:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("round_robin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("null"), NullScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("bogus")


class TestRetransmissionHelper:
    def test_budget_respected(self):
        retx = [PendingRetx(rnti=70, harq_pid=0, n_prb=30, cqi_used=9,
                            tb_bits=1, attempt=2),
                PendingRetx(rnti=71, harq_pid=0, n_prb=30, cqi_used=9,
                            tb_bits=1, attempt=2)]
        out = schedule_retransmissions(ctx_with([], pending_retx=retx), 50)
        assert len(out) == 1  # second does not fit


@settings(max_examples=50, deadline=None)
@given(
    n_prb=st.integers(min_value=1, max_value=100),
    queues=st.lists(st.integers(min_value=0, max_value=10 ** 7),
                    min_size=0, max_size=30),
    cqis=st.lists(st.integers(min_value=0, max_value=15),
                  min_size=30, max_size=30),
    which=st.sampled_from(["round_robin", "fair_share",
                           "proportional_fair", "max_cqi"]),
)
def test_property_no_scheduler_oversubscribes(n_prb, queues, cqis, which):
    ues = [UeView(rnti=70 + i, queue_bytes=q, cqi=cqis[i])
           for i, q in enumerate(queues)]
    out = make_scheduler(which)(ctx_with(ues, n_prb=n_prb))
    assert sum(a.n_prb for a in out) <= n_prb
    scheduled = [a.rnti for a in out if not a.is_retx]
    assert len(scheduled) == len(set(scheduled))  # one DCI per UE
    for a in out:
        ue = next(u for u in ues if u.rnti == a.rnti)
        assert ue.queue_bytes > 0 and ue.cqi > 0


class TestGreedyFillMinShare:
    """Regression: min-share must degrade evenly at small budgets.

    With ``min_share_prb > budget // len(candidates)`` the old code
    handed the full minimum share to the UEs served first and nothing
    to the tail (budget 4, min-share 2, 4 UEs -> 2, 2, 0, 0).  The fix
    clamps to the fair split so everyone keeps at least one PRB.
    """

    def test_small_budget_serves_every_candidate(self):
        ues = views(4)  # saturated queues, cqi 10
        out = _greedy_fill(ues, 4, tti=0, min_share_prb=2)
        assert [a.n_prb for a in out] == [1, 1, 1, 1]
        assert {a.rnti for a in out} == {u.rnti for u in ues}

    def test_sufficient_budget_honours_min_share(self):
        ues = views(4)
        out = _greedy_fill(ues, 50, tti=0, min_share_prb=2)
        assert all(a.n_prb >= 2 for a in out)
        assert {a.rnti for a in out} == {u.rnti for u in ues}

    @settings(max_examples=100, deadline=None)
    @given(
        n_ues=st.integers(min_value=1, max_value=20),
        budget=st.integers(min_value=1, max_value=100),
        min_share=st.integers(min_value=1, max_value=20),
    )
    def test_property_no_starved_tail(self, n_ues, budget, min_share):
        ues = views(n_ues)
        out = _greedy_fill(ues, budget, tti=0, min_share_prb=min_share)
        assert sum(a.n_prb for a in out) <= budget
        served = {a.rnti for a in out}
        # Whenever the budget covers one PRB per candidate, no
        # saturated candidate may be starved by earlier over-allocation.
        if budget >= n_ues:
            assert served == {u.rnti for u in ues}
