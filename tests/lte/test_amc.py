"""Tests for link adaptation and the error model."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.mac.amc import DEFAULT_ERROR_MODEL, ErrorModel, select_mcs


class TestSelectMcs:
    def test_identity_mapping(self):
        assert select_mcs(12) == 12

    def test_backoff(self):
        assert select_mcs(12, backoff=2) == 10

    def test_backoff_clamps_at_zero(self):
        assert select_mcs(1, backoff=5) == 0

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            select_mcs(10, backoff=-1)


class TestErrorModel:
    def test_matching_mcs_has_base_bler(self):
        assert DEFAULT_ERROR_MODEL.error_probability(10, 10) == 0.0
        assert DEFAULT_ERROR_MODEL.error_probability(10, 15) == 0.0

    def test_overshoot_penalties_increase(self):
        m = DEFAULT_ERROR_MODEL
        p1 = m.error_probability(10, 9)
        p2 = m.error_probability(10, 8)
        p3 = m.error_probability(10, 7)
        assert 0 < p1 < p2 < p3 == 1.0

    def test_cqi0_always_fails(self):
        assert DEFAULT_ERROR_MODEL.error_probability(0, 5) == 1.0

    def test_harq_combining_reduces_error(self):
        m = ErrorModel(one_step_bler=0.5)
        p_first = m.error_probability(10, 9, attempt=1)
        p_second = m.error_probability(10, 9, attempt=2)
        p_third = m.error_probability(10, 9, attempt=3)
        assert p_first > p_second > p_third

    def test_nonzero_base_bler(self):
        m = ErrorModel(base_bler=0.1)
        assert m.error_probability(10, 10) == pytest.approx(0.1)
        assert m.error_probability(10, 10, attempt=2) < 0.1

    def test_invalid_attempt_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ERROR_MODEL.error_probability(10, 10, attempt=0)

    def test_invalid_bler_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(base_bler=1.5)
        with pytest.raises(ValueError):
            ErrorModel(one_step_bler=-0.1)

    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=1, max_value=6))
    def test_probability_always_valid(self, used, actual, attempt):
        p = DEFAULT_ERROR_MODEL.error_probability(used, actual, attempt)
        assert 0.0 <= p <= 1.0
