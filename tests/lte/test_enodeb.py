"""Tests for the eNodeB data plane."""

import pytest

from repro.lte.cell import CellConfig
from repro.lte.enodeb import EnbEventType, EnodeB
from repro.lte.mac.amc import ErrorModel
from repro.lte.mac.dci import DlAssignment, SchedulingContext
from repro.lte.phy.channel import FixedCqi, SquareWaveCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue


def drive(enb, ttis, per_tti=None):
    for t in range(ttis):
        if per_tti:
            per_tti(t)
        enb.tick(t)


class TestAttachment:
    def test_attach_assigns_rnti_and_emits_events(self):
        enb = EnodeB(1)
        events = []
        enb.subscribe(lambda ev: events.append(ev.type))
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        assert ue.rnti == rnti
        assert EnbEventType.RANDOM_ACCESS in events
        drive(enb, 100)
        assert enb.rrc.is_connected(rnti)
        assert EnbEventType.UE_ATTACHED in events

    def test_attach_requires_scheduler(self):
        # With a scheduler that never schedules, attachment times out.
        enb = EnodeB(1)
        enb.dl_scheduler[enb.cell().cell_id] = lambda ctx: []
        events = []
        enb.subscribe(lambda ev: events.append(ev.type))
        rnti = enb.attach_ue(Ue("001", FixedCqi(15)), tti=0)
        drive(enb, 2100)
        assert not enb.rrc.is_connected(rnti)
        assert EnbEventType.ATTACH_FAILED in events

    def test_detach_cleans_state(self):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        got = enb.detach_ue(rnti)
        assert got is ue and ue.rnti is None
        assert enb.rntis() == []

    def test_detach_purges_inflight_harq_feedback(self):
        """Regression: stale feedback for a departed UE must not hit a
        later UE that reuses the RNTI (seen on handover)."""
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        for t in range(30):
            enb.enqueue_dl(rnti, 1400, t)
            enb.tick(t)
        # Detach mid-flight: feedback for recent TBs is still pending.
        enb.detach_ue(rnti)
        ue2 = Ue("002", FixedCqi(15))
        rnti2 = enb.attach_ue(ue2, tti=30)
        assert rnti2 != rnti or not enb._pending_feedback
        for t in range(30, 60):
            enb.tick(t)  # must not raise

    def test_rntis_unique(self):
        enb = EnodeB(1)
        rntis = [enb.attach_ue(Ue(f"{i}", FixedCqi(10)), tti=0)
                 for i in range(5)]
        assert len(set(rntis)) == 5


class TestThroughput:
    def test_saturated_reaches_capacity(self):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        drive(enb, 2000, lambda t: t >= 50 and [
            enb.enqueue_dl(rnti, 1400, t) for _ in range(3)])
        assert ue.throughput_mbps(1999) == pytest.approx(
            capacity_mbps(15, 50), rel=0.05)

    def test_lower_cqi_lower_throughput(self):
        results = {}
        for cqi in (5, 10, 15):
            enb = EnodeB(1)
            ue = Ue("001", FixedCqi(cqi))
            rnti = enb.attach_ue(ue, tti=0)
            drive(enb, 1500, lambda t: t >= 50 and [
                enb.enqueue_dl(rnti, 1400, t) for _ in range(3)])
            results[cqi] = ue.throughput_mbps(1499)
        assert results[5] < results[10] < results[15]

    def test_two_ues_share_capacity(self):
        enb = EnodeB(1)
        ues = [Ue(f"{i}", FixedCqi(15)) for i in range(2)]
        rntis = [enb.attach_ue(u, tti=0) for u in ues]

        def load(t):
            if t >= 50:
                for r in rntis:
                    for _ in range(3):
                        enb.enqueue_dl(r, 1400, t)
        drive(enb, 2000, load)
        total = sum(u.throughput_mbps(1999) for u in ues)
        assert total == pytest.approx(capacity_mbps(15, 50), rel=0.06)

    def test_uplink(self):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        drive(enb, 2000, lambda t: t >= 50 and enb.notify_ul(rnti, 4000, t))
        ul_mbps = enb.counters.ul_delivered_bytes * 8 / (2000 * 1000)
        assert ul_mbps == pytest.approx(capacity_mbps(15, 50, uplink=True),
                                        rel=0.08)


class TestHarqRecovery:
    def test_errors_recovered_by_retransmission(self):
        # Channel drops 3 CQI steps for stretches: initial transmissions
        # with stale MCS fail, HARQ retx + RLC requeue recover the data.
        # The flip period (47) is coprime with the SRS refresh period,
        # so stale-MCS windows of a few TTIs occur on most flips.
        enb = EnodeB(1, seed=3, error_model=ErrorModel())
        ue = Ue("001", SquareWaveCqi(12, 9, period_ttis=47))
        rnti = enb.attach_ue(ue, tti=0)
        drive(enb, 4000, lambda t: t >= 50 and [
            enb.enqueue_dl(rnti, 1400, t) for _ in range(2)])
        assert enb.counters.tb_err > 0
        # Goodput stays positive and below the clean-channel ceiling.
        assert 1.0 < ue.throughput_mbps(3999) < capacity_mbps(12, 50)

    def test_scheduling_request_event(self):
        enb = EnodeB(1)
        events = []
        enb.subscribe(lambda ev: events.append(ev.type))
        rnti = enb.attach_ue(Ue("001", FixedCqi(15)), tti=0)
        enb.notify_ul(rnti, 100, 0)
        assert EnbEventType.SCHEDULING_REQUEST in events
        # A second notification with backlog pending does not re-trigger.
        events.clear()
        enb.notify_ul(rnti, 100, 1)
        assert EnbEventType.SCHEDULING_REQUEST not in events


class TestSchedulerHookContract:
    def test_oversubscribing_hook_rejected(self):
        enb = EnodeB(1)
        rnti = enb.attach_ue(Ue("001", FixedCqi(15)), tti=0)
        enb.enqueue_dl(rnti, 1400, 0)
        enb.dl_scheduler[enb.cell().cell_id] = lambda ctx: [
            DlAssignment(rnti=rnti, n_prb=60, cqi_used=15)]
        with pytest.raises(ValueError):
            enb.plan(0)

    def test_context_reflects_queue_and_cqi(self):
        enb = EnodeB(1)
        rnti = enb.attach_ue(Ue("001", FixedCqi(9)), tti=0)
        enb.enqueue_dl(rnti, 1000, 0)
        seen = {}

        def spy(ctx: SchedulingContext):
            seen["ctx"] = ctx
            return []

        enb.dl_scheduler[enb.cell().cell_id] = spy
        # At tti 10 random access completes and the UE becomes
        # schedulable (CONNECTING with SRB traffic queued).
        enb.plan(10)
        ctx = seen["ctx"]
        assert ctx.n_prb == 50
        ue_view = ctx.ue(rnti)
        assert ue_view.cqi == 9
        assert ue_view.queue_bytes > 1000  # payload + headers + SRB

    def test_mac_stats_snapshot(self):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(11), labels={"operator": "mno"})
        rnti = enb.attach_ue(ue, tti=0)
        enb.enqueue_dl(rnti, 2000, 0)
        drive(enb, 5)
        stats = enb.mac_stats()
        assert rnti in stats
        assert stats[rnti]["cqi"] == 11
        assert "queue_bytes" in stats[rnti]
        assert stats[rnti]["rrc_state"] in ("connecting", "random_access",
                                            "connected")


class TestMultiCell:
    def test_two_cells_independent(self):
        enb = EnodeB(1, [CellConfig(cell_id=10), CellConfig(cell_id=11)])
        ue_a = Ue("a", FixedCqi(15))
        ue_b = Ue("b", FixedCqi(15))
        ra = enb.attach_ue(ue_a, cell_id=10, tti=0)
        rb = enb.attach_ue(ue_b, cell_id=11, tti=0)

        def load(t):
            if t >= 50:
                for r in (ra, rb):
                    for _ in range(3):
                        enb.enqueue_dl(r, 1400, t)
        drive(enb, 1500, load)
        # Each cell has its own 50 PRBs: both UEs reach full capacity.
        assert ue_a.throughput_mbps(1499) == pytest.approx(
            capacity_mbps(15, 50), rel=0.06)
        assert ue_b.throughput_mbps(1499) == pytest.approx(
            capacity_mbps(15, 50), rel=0.06)

    def test_cell_accessor_requires_id_when_ambiguous(self):
        enb = EnodeB(1, [CellConfig(cell_id=10), CellConfig(cell_id=11)])
        with pytest.raises(ValueError):
            enb.cell()
        assert enb.cell(11).cell_id == 11
