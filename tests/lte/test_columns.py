"""Unit tests for the columnar per-UE hot-state store (CellColumns).

The differential suite (tests/sim/test_differential.py) asserts the
columnar and object context builders make identical decisions end to
end; these tests pin the column store's own invariants -- slot
stability, free-slot recycling, dirty-driven refresh, and the
incrementally maintained backlogged/schedulable memos.
"""

from repro.lte.phy.channel import FixedCqi
from repro.lte.enodeb import EnodeB
from repro.lte.mac.drx import DrxConfig
from repro.lte.ue import Ue


def build_enb(n_ues=3, cqi=12):
    enb = EnodeB(1)
    rntis = []
    for i in range(n_ues):
        ue = Ue(f"00{i:04d}", FixedCqi(cqi))
        rntis.append(enb.attach_ue(ue, tti=0))
    for t in range(60):
        enb.tick(t)
    for rnti in rntis:
        assert enb.rrc.is_connected(rnti)
    return enb, rntis


def columns_of(enb):
    (cell_id,) = enb.cells
    return enb._cell_columns[cell_id]


class TestSlotAllocation:
    def test_slots_are_stable_across_detach(self):
        enb, rntis = build_enb(3)
        cols = columns_of(enb)
        slots = [cols.slot(r) for r in rntis]
        assert slots == [0, 1, 2]
        enb.detach_ue(rntis[1])
        assert cols.slot(rntis[1]) is None
        # Survivors keep their slots.
        assert cols.slot(rntis[0]) == 0
        assert cols.slot(rntis[2]) == 2

    def test_freed_slots_recycled_lowest_first(self):
        enb, rntis = build_enb(3)
        cols = columns_of(enb)
        enb.detach_ue(rntis[0])
        enb.detach_ue(rntis[1])
        newcomer = enb.attach_ue(Ue("009999", FixedCqi(12)), tti=61)
        assert cols.slot(newcomer) == 0
        second = enb.attach_ue(Ue("009998", FixedCqi(12)), tti=61)
        assert cols.slot(second) == 1

    def test_add_is_idempotent(self):
        enb, rntis = build_enb(1)
        cols = columns_of(enb)
        assert cols.add(rntis[0]) == cols.slot(rntis[0])
        assert len(cols) == 1


class TestDirtyRefresh:
    def test_clean_build_costs_no_refresh(self):
        enb, rntis = build_enb(2)
        cols = columns_of(enb)
        cols.build(61)
        assert cols.dirty_count == 0
        # Nothing changed: a second build leaves the memos identical.
        views_a = cols.build(62)[0]
        views_b = cols.build(63)[0]
        assert views_a is views_b

    def test_traffic_arrival_marks_dirty_and_refreshes(self):
        enb, rntis = build_enb(2)
        cols = columns_of(enb)
        cols.build(61)
        enb.enqueue_dl(rntis[0], 500, 61)
        assert cols.dirty_count >= 1
        views, backlogged, _ = cols.build(62)
        by_rnti = {v.rnti: v for v in views}
        assert by_rnti[rntis[0]].queue_bytes == 500
        assert [v.rnti for v in backlogged] == [rntis[0]]

    def test_views_ordered_by_rnti(self):
        enb, rntis = build_enb(3)
        views = columns_of(enb).build(61)[0]
        assert [v.rnti for v in views] == sorted(rntis)


class TestBacklogMemos:
    def test_backlog_sorted_and_incremental(self):
        enb, rntis = build_enb(4)
        cols = columns_of(enb)
        # Enqueue in reverse attach order; the memo must still come
        # out RNTI-sorted (bisect insertion, not rebuild order).
        for rnti in reversed(rntis):
            enb.enqueue_dl(rnti, 200, 61)
            cols.build(61)
        _, backlogged, schedulable = cols.build(62)
        assert [v.rnti for v in backlogged] == sorted(rntis)
        assert [v.rnti for v in schedulable] == sorted(rntis)

    def test_drained_ue_leaves_backlog(self):
        enb, rntis = build_enb(2)
        cols = columns_of(enb)
        enb.enqueue_dl(rntis[0], 300, 61)
        cols.build(61)
        # Drain by detaching the RLC payload directly via the queue API.
        rlc = enb.rlc[rntis[0]]
        while rlc.buffer_bytes() > 0:
            rlc.dequeue(rlc.buffer_bytes() + 64, 61, 3)
        enb.mark_ue_dirty(rntis[0])
        _, backlogged, _ = cols.build(62)
        assert backlogged == []

    def test_detach_removes_from_backlog(self):
        enb, rntis = build_enb(2)
        cols = columns_of(enb)
        for rnti in rntis:
            enb.enqueue_dl(rnti, 200, 61)
        cols.build(61)
        enb.detach_ue(rntis[0])
        _, backlogged, _ = cols.build(62)
        assert [v.rnti for v in backlogged] == [rntis[1]]

    def test_cqi_zero_excluded_from_schedulable(self):
        enb, rntis = build_enb(1, cqi=12)
        extra = enb.attach_ue(Ue("000077", FixedCqi(0)), tti=61)
        for t in range(61, 121):
            enb.tick(t)
        cols = columns_of(enb)
        enb.enqueue_dl(rntis[0], 200, 121)
        enb.enqueue_dl(extra, 200, 121)
        _, backlogged, schedulable = cols.build(121)
        assert {v.rnti for v in backlogged} == {rntis[0], extra}
        assert [v.rnti for v in schedulable] == [rntis[0]]


class TestDrxTracking:
    def test_sleep_transition_updates_membership(self):
        enb, rntis = build_enb(1)
        rnti = rntis[0]
        cols = columns_of(enb)
        enb.set_drx(rnti, DrxConfig(cycle_ttis=10, on_duration_ttis=2,
                                    inactivity_ttis=0))
        awake_tti = next(t for t in range(100, 120)
                         if enb.drx.is_awake(rnti, t))
        asleep_tti = next(t for t in range(awake_tti, awake_tti + 10)
                          if not enb.drx.is_awake(rnti, t))
        views_awake = cols.build(awake_tti)[0]
        assert [v.rnti for v in views_awake] == [rnti]
        views_asleep = cols.build(asleep_tti)[0]
        assert views_asleep == []
        # Waking again restores membership with no explicit dirty mark.
        views_again = cols.build(awake_tti + 10)[0]
        assert [v.rnti for v in views_again] == [rnti]
