"""Tests for scheduling decision structures and allocation validation."""

import pytest

from repro.lte.mac.dci import (
    DlAssignment,
    SchedulingContext,
    UeView,
    UlGrant,
    total_prbs,
    validate_allocation,
)


def view(rnti, queue=1000, cqi=10, **kw):
    return UeView(rnti=rnti, queue_bytes=queue, cqi=cqi, **kw)


class TestDlAssignment:
    def test_valid(self):
        a = DlAssignment(rnti=70, n_prb=10, cqi_used=12)
        assert a.lcid == 3 and not a.is_retx

    @pytest.mark.parametrize("kw", [
        dict(rnti=0, n_prb=1, cqi_used=1),
        dict(rnti=70, n_prb=0, cqi_used=1),
        dict(rnti=70, n_prb=1, cqi_used=16),
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            DlAssignment(**kw)


class TestUlGrant:
    def test_valid(self):
        UlGrant(rnti=70, n_prb=5, cqi_used=7)

    def test_zero_prbs_rejected(self):
        with pytest.raises(ValueError):
            UlGrant(rnti=70, n_prb=0, cqi_used=7)


class TestSchedulingContext:
    def test_ue_lookup(self):
        ctx = SchedulingContext(tti=0, n_prb=50,
                                ues=[view(70), view(71)])
        assert ctx.ue(71).rnti == 71
        assert ctx.ue(99) is None

    def test_backlogged_sorted_and_filtered(self):
        ctx = SchedulingContext(tti=0, n_prb=50, ues=[
            view(72), view(70), view(71, queue=0)])
        assert [u.rnti for u in ctx.backlogged()] == [70, 72]


class TestValidateAllocation:
    def test_within_budget_ok(self):
        validate_allocation(
            [DlAssignment(rnti=70, n_prb=25, cqi_used=10),
             DlAssignment(rnti=71, n_prb=25, cqi_used=10)], 50)

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            validate_allocation(
                [DlAssignment(rnti=70, n_prb=30, cqi_used=10),
                 DlAssignment(rnti=71, n_prb=30, cqi_used=10)], 50)

    def test_duplicate_rnti_rejected(self):
        with pytest.raises(ValueError):
            validate_allocation(
                [DlAssignment(rnti=70, n_prb=5, cqi_used=10),
                 DlAssignment(rnti=70, n_prb=5, cqi_used=12)], 50)

    def test_retx_plus_new_data_same_rnti_allowed(self):
        validate_allocation(
            [DlAssignment(rnti=70, n_prb=5, cqi_used=10, is_retx=True,
                          harq_pid=0),
             DlAssignment(rnti=70, n_prb=5, cqi_used=10)], 50)

    def test_total_prbs(self):
        assert total_prbs([DlAssignment(rnti=70, n_prb=7, cqi_used=1),
                           DlAssignment(rnti=71, n_prb=3, cqi_used=1)]) == 10
