"""Unit tests for the northbound auth policies."""

import pytest

from repro.nb.auth import AuthPolicy, TokenAuth, build_auth


class TestTokenAuth:
    def test_correct_token_authorizes(self):
        auth = TokenAuth("sesame")
        assert auth.authorize(
            "GET", "/stats", {"authorization": "Bearer sesame"})

    def test_wrong_token_rejected(self):
        auth = TokenAuth("sesame")
        assert not auth.authorize(
            "GET", "/stats", {"authorization": "Bearer nope"})

    def test_missing_header_rejected(self):
        assert not TokenAuth("sesame").authorize("GET", "/stats", {})

    def test_prefix_of_token_rejected(self):
        """Partial matches must fail -- the compare is all-or-nothing
        (and constant-time, so length can't be probed via timing)."""
        auth = TokenAuth("sesame")
        for probe in ("Bearer s", "Bearer sesam", "Bearer sesame1",
                      "Bearer  sesame", "bearer sesame", "sesame"):
            assert not auth.authorize(
                "GET", "/stats", {"authorization": probe})

    def test_non_ascii_header_rejected_not_crash(self):
        auth = TokenAuth("sesame")
        assert not auth.authorize(
            "GET", "/stats", {"authorization": "Bearer sésame"})

    def test_uses_constant_time_compare(self):
        """The implementation must route through hmac.compare_digest."""
        import unittest.mock as mock
        auth = TokenAuth("sesame")
        with mock.patch("repro.nb.auth.hmac.compare_digest",
                        wraps=__import__("hmac").compare_digest) as cd:
            auth.authorize(
                "GET", "/stats", {"authorization": "Bearer sesame"})
        cd.assert_called_once()

    def test_empty_token_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TokenAuth("")

    def test_challenge(self):
        assert TokenAuth("x").challenge() == "Bearer"


class TestBuildAuth:
    def test_token_builds_token_auth(self):
        assert isinstance(build_auth("secret"), TokenAuth)

    def test_no_token_allows_all(self):
        auth = build_auth(None)
        assert type(auth) is AuthPolicy
        assert auth.authorize("GET", "/anything", {})
