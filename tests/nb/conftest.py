"""Shared fixtures for the northbound service-plane tests."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.nb.client import NorthboundClient
from repro.nb.server import NorthboundServer
from repro.nb.service import NorthboundService
from repro.sim.simulation import Simulation


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    obs.disable()


def build_sim(n_ues: int = 1) -> Simulation:
    """One eNB + agent + *n_ues* UEs, master attached."""
    sim = Simulation(with_master=True)
    enb = sim.add_enb()
    sim.add_agent(enb, rtt_ms=2.0)
    for i in range(n_ues):
        sim.add_ue(enb, Ue(f"20893000000{i:04d}", FixedCqi(12)))
    return sim


@pytest.fixture
def sim():
    return build_sim()


@pytest.fixture
def service(sim):
    svc = NorthboundService(sim.master)
    svc.attach()
    yield svc
    svc.detach()


class LiveServer:
    """A running sim + HTTP server, ticking on a background thread."""

    def __init__(self, sim: Simulation, service: NorthboundService,
                 server: NorthboundServer, host: str, port: int) -> None:
        self.sim = sim
        self.service = service
        self.server = server
        self.host = host
        self.port = port
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._drive, daemon=True)
        self._thread.start()

    def _drive(self) -> None:
        while not self._stop.is_set():
            self.sim.run(20)
            time.sleep(0.001)

    def client(self, **kwargs) -> NorthboundClient:
        return NorthboundClient(self.host, self.port, **kwargs)

    def agent_id(self) -> int:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            ids = self.sim.master.rib.agent_ids()
            if ids:
                return ids[0]
            time.sleep(0.01)
        raise AssertionError("agent never joined the RIB")

    def shutdown(self) -> None:
        self._stop.set()
        self._thread.join(5.0)
        self.server.stop()
        self.service.detach()


@pytest.fixture
def live(sim, service):
    server = NorthboundServer(service)
    host, port = server.start()
    live = LiveServer(sim, service, server, host, port)
    yield live
    live.shutdown()
