"""HTTP frontend tests: framing, lifecycle, auth, fault tolerance."""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro import obs
from repro.nb.auth import TokenAuth
from repro.nb.client import ClientError
from repro.nb.server import NorthboundServer

from tests.nb.conftest import LiveServer


class TestUnary:
    def test_info_reports_platform_state(self, live):
        live.agent_id()
        info = live.client().info()
        assert info["platform"] == "repro-flexran"
        assert info["agents"]
        assert info["tti"] > 0

    def test_rib_reads(self, live):
        agent = live.agent_id()
        body = live.client().get(f"/v1/rib/agents/{agent}")
        assert body["agent"] == agent
        assert body["cells"]
        ues = live.client().get(f"/v1/rib/agents/{agent}/ues")
        assert ues["agent"] == agent

    def test_unknown_agent_is_404(self, live):
        live.agent_id()
        with pytest.raises(ClientError) as err:
            live.client().get("/v1/rib/agents/999")
        assert err.value.status == 404

    def test_unknown_path_404_wrong_method_405(self, live):
        client = live.client()
        with pytest.raises(ClientError) as err:
            client.get("/v1/nope")
        assert err.value.status == 404
        with pytest.raises(ClientError) as err:
            client.post("/v1/info", {})
        assert err.value.status == 405

    def test_malformed_json_body_is_400(self, live):
        conn = http.client.HTTPConnection(live.host, live.port, timeout=5)
        try:
            conn.request("POST", "/v1/agents/1/policy", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()


class TestCommands:
    def test_prb_cap_returns_xid_and_applies(self, live):
        agent = live.agent_id()
        detail = live.client().get(f"/v1/rib/agents/{agent}")
        cell_id = detail["cells"][0]
        reply = live.client().set_prb_cap(agent, cell_id, 11)
        assert isinstance(reply["xid"], int) and reply["xid"] > 0
        # Distinct commands get distinct xids.
        again = live.client().set_prb_cap(agent, cell_id, None)
        assert again["xid"] != reply["xid"]

    def test_policy_push_returns_xid(self, live):
        from repro.core.policy import build_policy

        agent = live.agent_id()
        text = build_policy("mac", "dl_scheduling", behavior="local_fair")
        reply = live.client().send_policy(agent, text)
        assert reply["xid"] > 0

    def test_missing_field_is_400(self, live):
        agent = live.agent_id()
        with pytest.raises(ClientError) as err:
            live.client().post(f"/v1/agents/{agent}/policy", {})
        assert err.value.status == 400


class TestStreams:
    def test_jsonl_stream_in_tti_order(self, live):
        with live.client().stream("/v1/stream/tti?period=5") as stream:
            items = stream.read(4)
        ttis = [item["tti"] for item in items]
        assert ttis == sorted(ttis)
        assert all(item["stream"] == "tti" for item in items)

    def test_sse_stream_framing(self, live):
        with live.client().stream(
                "/v1/stream/tti?period=5&mode=sse") as stream:
            items = stream.read(2)
        assert len(items) == 2
        assert items[0]["stream"] == "tti"

    def test_bad_stream_mode_is_400(self, live):
        with pytest.raises(ClientError) as err:
            live.client().stream("/v1/stream/tti?mode=xml")
        assert err.value.status == 400

    def test_delete_subscription_ends_stream(self, live):
        client = live.client()
        stream = client.stream("/v1/stream/tti?period=5")
        sub_id = int(stream.subscription_id)
        rows = client.subscriptions()["subscriptions"]
        assert any(r["id"] == sub_id for r in rows)
        client.unsubscribe(sub_id)
        # The server notices the closed row and ends the stream.
        leftovers = stream.read(1000)
        stream.close()
        rows = client.subscriptions()["subscriptions"]
        assert not any(r["id"] == sub_id for r in rows)
        assert len(leftovers) < 1000

    def test_client_disconnect_mid_stream_server_survives(self, live):
        client = live.client()
        stream = client.stream("/v1/stream/tti?period=2")
        assert stream.read(2)
        stream.close()  # abrupt: server learns from EOF/write failure
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not client.subscriptions()["subscriptions"]:
                break
            time.sleep(0.05)
        assert client.subscriptions()["subscriptions"] == []
        # And the server keeps serving both unary and stream requests.
        assert client.info()["tti"] > 0
        with client.stream("/v1/stream/tti?period=5") as stream2:
            assert stream2.read(1)

    def test_fanout_latency_histogram_recorded(self, live):
        with obs.enabled_scope(trace=False) as ob:
            with live.client().stream("/v1/stream/tti?period=2") as stream:
                stream.read(5)
            histogram = ob.registry.histogram("nb.fanout.latency_ms.tti")
            assert histogram.count >= 5
            assert histogram.percentile(99) >= 0.0


class TestAuth:
    def test_token_required_when_configured(self, sim, service):
        server = NorthboundServer(service, auth=TokenAuth("sesame"))
        host, port = server.start()
        live = LiveServer(sim, service, server, host, port)
        try:
            with pytest.raises(ClientError) as err:
                live.client().info()
            assert err.value.status == 401
            info = live.client(token="sesame").info()
            assert info["platform"] == "repro-flexran"
        finally:
            live.shutdown()


class TestLifecycle:
    def test_stop_is_clean_and_restartable_service(self, sim, service):
        server = NorthboundServer(service)
        host, port = server.start()
        live = LiveServer(sim, service, server, host, port)
        stream = live.client().stream("/v1/stream/tti?period=5")
        assert stream.read(1)
        live.shutdown()  # with a stream still open
        # The socket is gone afterwards.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(host, port, timeout=1)
            conn.request("GET", "/v1/info")
            conn.getresponse()

    def test_keep_alive_serves_multiple_requests(self, live):
        live.agent_id()
        conn = http.client.HTTPConnection(live.host, live.port, timeout=5)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/info")
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()
