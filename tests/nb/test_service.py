"""Service-core tests: controller bridge, pump, sampling, correlation.

Everything here drives the simulation synchronously on the test thread
-- the pump runs as a master cycle hook, so ``submit(...)`` followed by
``sim.run(1)`` executes the command deterministically.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.nb.service import NorthboundService

from tests.nb.conftest import build_sim


def drain(sub):
    """Decode and clear everything queued on a subscription."""
    items = [json.loads(payload) for payload, _ in sub.queue]
    sub.queue.clear()
    return items


def agent_id_of(sim) -> int:
    ids = sim.master.rib.agent_ids()
    assert ids, "agent not yet in RIB"
    return ids[0]


class TestCommandPump:
    def test_commands_execute_on_cycle_and_return_xid(self, sim, service):
        sim.run(50)
        agent = agent_id_of(sim)
        ticket = service.submit(lambda nb: nb.ping(agent))
        assert not ticket.done
        sim.run(1)
        xid = ticket.result(0)
        assert isinstance(xid, int) and xid > 0

    def test_call_failures_propagate(self, sim, service):
        sim.run(50)
        ticket = service.submit(lambda nb: nb.rib.agent(999))
        sim.run(1)
        with pytest.raises(KeyError):
            ticket.result(0)
        assert service.commands_failed == 1

    def test_reads_see_consistent_rib(self, sim, service):
        sim.run(100)
        ticket = service.submit(
            lambda nb: (nb.now, nb.agent_ids(), nb.live_agent_ids()))
        sim.run(1)
        now, agents, live = ticket.result(0)
        assert agents == live
        assert now >= 100


class TestEventStreams:
    def test_events_arrive_in_tti_order_then_unsubscribe(self):
        sim = build_sim(n_ues=0)
        svc = NorthboundService(sim.master)
        svc.attach()
        try:
            sub = svc.subscribe_events()
            enb = next(iter(sim.enbs.values()))
            # Attach UEs at different TTIs: each attach produces events.
            for i in range(3):
                sim.add_ue(enb, Ue(f"20893111100{i:02d}", FixedCqi(10)))
                sim.run(40)
            items = drain(sub)
            assert len(items) >= 3
            ttis = [item["tti"] for item in items]
            assert ttis == sorted(ttis), "events must be in TTI order"
            assert all(item["stream"] == "events" for item in items)
            # Unsubscribe: nothing further is delivered.
            svc.unsubscribe(sub.sub_id)
            published = sub.published
            sim.add_ue(enb, Ue("208931111999", FixedCqi(10)))
            sim.run(40)
            assert sub.published == published
            assert len(sub.queue) == 0
        finally:
            svc.detach()

    def test_event_class_filter(self):
        sim = build_sim(n_ues=0)
        svc = NorthboundService(sim.master)
        svc.attach()
        try:
            never = svc.subscribe_events(frozenset({"no_such_class"}))
            every = svc.subscribe_events()
            enb = next(iter(sim.enbs.values()))
            sim.add_ue(enb, Ue("208931111001", FixedCqi(10)))
            sim.run(40)
            assert len(every.queue) > 0
            assert len(never.queue) == 0
        finally:
            svc.detach()


class TestSampledStreams:
    def test_tti_stream_honours_period(self, sim, service):
        sim.run(10)
        sub = service.subscribe_tti(period_ttis=20)
        sim.run(100)
        items = drain(sub)
        ttis = [item["tti"] for item in items]
        assert len(items) == 5
        assert all(b - a == 20 for a, b in zip(ttis, ttis[1:]))

    def test_cell_stream_samples_rib(self, sim, service):
        sim.run(60)
        agent = agent_id_of(sim)
        cell_id = sorted(sim.master.rib.agent(agent).cells)[0]
        sub = service.subscribe_cell(agent, cell_id, period_ttis=10)
        sim.run(30)
        items = drain(sub)
        assert items
        assert items[0]["cell"] == cell_id
        assert items[0]["present"] is True

    def test_missing_ue_encodes_absent_not_crash(self, sim, service):
        sim.run(60)
        agent = agent_id_of(sim)
        sub = service.subscribe_ue(agent, 9999, period_ttis=10)
        sim.run(30)
        items = drain(sub)
        assert items
        assert items[0]["present"] is False


class TestBackpressure:
    def test_slow_consumer_never_stalls_tti_loop(self, sim, service):
        with obs.enabled_scope(trace=False) as ob:
            sub = service.subscribe_tti(period_ttis=1, capacity=4)
            start = sim.now
            sim.run(500)  # nobody drains the queue
            assert sim.now == start + 500, "TTI loop must keep ticking"
            assert len(sub.queue) == 4
            assert sub.drops == 500 - 4
            counter = ob.registry.counter("nb.fanout.dropped.tti")
            assert counter.value == 500 - 4


class TestXidCorrelation:
    def test_command_xid_correlates_to_agent_delivery(self):
        with obs.enabled_scope(trace=False) as ob:
            sim = build_sim()
            svc = NorthboundService(sim.master)
            svc.attach()
            try:
                sim.run(60)
                agent = agent_id_of(sim)
                cell_id = sorted(sim.master.rib.agent(agent).cells)[0]
                ticket = svc.submit(
                    lambda nb: nb.set_prb_cap(agent, cell_id, 17))
                sim.run(1)
                xid = ticket.result(0)
                sim.run(60)  # let the command cross the control channel
                records = ob.correlator.records(direction="dl",
                                                msg_type="PrbCapConfig")
                matched = [r for r in records if r.xid == xid]
                assert matched, (
                    f"no completed dl PrbCapConfig record for xid {xid}; "
                    f"saw {[r.xid for r in records]}")
            finally:
                svc.detach()


class TestLifecycle:
    def test_attach_is_idempotent_and_detach_unhooks(self, sim):
        svc = NorthboundService(sim.master)
        svc.attach()
        svc.attach()
        sub = svc.subscribe_tti(period_ttis=1)
        sim.run(5)
        assert sub.published == 5
        svc.detach()
        sim.run(5)
        assert sub.published == 5  # no pump, no publishes
