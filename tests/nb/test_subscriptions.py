"""Unit tests for the subscription routing table (no sim, no HTTP)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.nb.subscriptions import (
    KIND_CELL,
    KIND_EVENTS,
    KIND_TTI,
    KIND_UE,
    SubscriptionTable,
)


def woken_ids(woken):
    return [s.sub_id for s in woken]


class TestMembership:
    def test_subscribe_assigns_unique_ids(self):
        table = SubscriptionTable()
        a = table.subscribe(KIND_EVENTS)
        b = table.subscribe(KIND_TTI, period_ttis=10)
        assert a.sub_id != b.sub_id
        assert len(table) == 2

    def test_unsubscribe_removes_and_reports(self):
        table = SubscriptionTable()
        sub = table.subscribe(KIND_EVENTS)
        assert table.unsubscribe(sub.sub_id) is True
        assert sub.closed is True
        assert table.unsubscribe(sub.sub_id) is False
        assert len(table) == 0

    def test_ue_and_cell_require_key(self):
        table = SubscriptionTable()
        with pytest.raises(ValueError):
            table.subscribe(KIND_UE)
        with pytest.raises(ValueError):
            table.subscribe(KIND_CELL, key=(1,))

    def test_rejects_unknown_kind_and_bad_params(self):
        table = SubscriptionTable()
        with pytest.raises(ValueError):
            table.subscribe("bogus")
        with pytest.raises(ValueError):
            table.subscribe(KIND_TTI, period_ttis=0)
        with pytest.raises(ValueError):
            table.subscribe(KIND_EVENTS, capacity=0)

    def test_describe_lists_rows(self):
        table = SubscriptionTable()
        table.subscribe(KIND_UE, key=(1, 7), period_ttis=5)
        (row,) = table.describe()
        assert row["kind"] == KIND_UE
        assert row["key"] == [1, 7]
        assert row["period_ttis"] == 5


class TestEventRouting:
    def test_publish_reaches_matching_classes_only(self):
        table = SubscriptionTable()
        any_class = table.subscribe(KIND_EVENTS)
        only_ho = table.subscribe(
            KIND_EVENTS, event_classes=frozenset({"handover_complete"}))
        woken = []
        reached = table.publish_event("ue_attach", b"{}", 0.0, woken)
        assert reached == 1
        assert len(any_class.queue) == 1
        assert len(only_ho.queue) == 0
        reached = table.publish_event("handover_complete", b"{}", 0.0, woken)
        assert reached == 2
        assert len(only_ho.queue) == 1

    def test_unsubscribed_rows_receive_nothing(self):
        table = SubscriptionTable()
        sub = table.subscribe(KIND_EVENTS)
        table.publish_event("ue_attach", b"{}", 0.0, [])
        table.unsubscribe(sub.sub_id)
        published_before = sub.published
        table.publish_event("ue_attach", b"{}", 0.0, [])
        assert sub.published == published_before

    def test_woken_records_each_row_once_per_flush_cycle(self):
        table = SubscriptionTable()
        sub = table.subscribe(KIND_EVENTS)
        woken = []
        table.publish_event("ue_attach", b"a", 0.0, woken)
        table.publish_event("ue_attach", b"b", 0.0, woken)
        assert woken_ids(woken) == [sub.sub_id]  # deduped by the flag
        # The pump resets the flag when it flushes the batch; the next
        # append queues a fresh wake.
        sub.wake_pending = False
        woken.clear()
        table.publish_event("ue_attach", b"c", 0.0, woken)
        assert woken_ids(woken) == [sub.sub_id]


class TestBackpressure:
    def test_full_queue_drops_oldest_never_blocks(self):
        table = SubscriptionTable()
        sub = table.subscribe(KIND_EVENTS, capacity=3)
        for i in range(10):
            table.publish_event("ue_attach", b"%d" % i, 0.0, [])
        assert sub.drops == 7
        assert sub.published == 10
        # Drop-oldest: the freshest three frames survive.
        assert [p for p, _ in sub.queue] == [b"7", b"8", b"9"]

    def test_drops_counted_in_obs(self):
        with obs.enabled_scope(trace=False) as ob:
            table = SubscriptionTable()
            table.subscribe(KIND_EVENTS, capacity=1)
            for _ in range(5):
                table.publish_event("ue_attach", b"{}", 0.0, [])
            counter = ob.registry.counter("nb.fanout.dropped.events")
            assert counter.value == 4

    def test_active_gauge_tracks_membership(self):
        with obs.enabled_scope(trace=False) as ob:
            table = SubscriptionTable()
            a = table.subscribe(KIND_EVENTS)
            table.subscribe(KIND_TTI, period_ttis=10)
            gauge = ob.registry.gauge("nb.subscriptions.active")
            assert gauge.value == 2
            table.unsubscribe(a.sub_id)
            assert gauge.value == 1
