"""Tests for the EPC stub."""

from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.traffic.epc import EpcStub
from repro.traffic.generators import CbrSource, SaturatingSource


def make_cell():
    enb = EnodeB(1)
    ue = Ue("001", FixedCqi(15))
    rnti = enb.attach_ue(ue, tti=0)
    return enb, ue, rnti


class TestDownlink:
    def test_flow_feeds_queue(self):
        enb, ue, rnti = make_cell()
        epc = EpcStub()
        stats = epc.add_downlink(CbrSource(8.0), enb, rnti)
        for t in range(100):
            epc.tick(t)
        assert stats.offered_bytes > 0
        assert stats.accepted_bytes == stats.offered_bytes
        assert enb.queue_bytes(rnti) > 0

    def test_overflow_counted_as_dropped(self):
        enb = EnodeB(1, rlc_buffer_bytes=5000)
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=0)
        epc = EpcStub()
        stats = epc.add_downlink(SaturatingSource(burst_bytes=10_000),
                                 enb, rnti)
        for t in range(10):
            epc.tick(t)
        assert stats.dropped_bytes > 0
        assert (stats.accepted_bytes + stats.dropped_bytes
                == stats.offered_bytes)

    def test_detached_ue_skipped(self):
        enb, ue, rnti = make_cell()
        epc = EpcStub()
        stats = epc.add_downlink(CbrSource(8.0), enb, rnti)
        enb.detach_ue(rnti)
        epc.tick(0)
        assert stats.offered_bytes == 0

    def test_remove_flows(self):
        enb, ue, rnti = make_cell()
        epc = EpcStub()
        epc.add_downlink(CbrSource(8.0), enb, rnti)
        epc.add_uplink(CbrSource(1.0), enb, rnti)
        assert epc.remove_flows_for(rnti) == 2


class TestUplink:
    def test_uplink_notifies_enb(self):
        enb, ue, rnti = make_cell()
        epc = EpcStub()
        stats = epc.add_uplink(CbrSource(8.0), enb, rnti)
        for t in range(10):
            epc.tick(t)
        assert ue.ul_backlog_bytes > 0
        assert stats.offered_bytes == ue.ul_backlog_bytes


class TestRehome:
    def test_flows_follow_handover(self):
        enb_a = EnodeB(1)
        enb_b = EnodeB(2)
        ue = Ue("001", FixedCqi(15))
        rnti_a = enb_a.attach_ue(ue, tti=0)
        epc = EpcStub()
        epc.add_downlink(CbrSource(8.0), enb_a, rnti_a)
        enb_a.detach_ue(rnti_a)
        rnti_b = enb_b.attach_ue(ue, tti=1)
        assert epc.rehome(enb_a, rnti_a, enb_b, rnti_b) == 1
        epc.tick(2)
        assert enb_b.queue_bytes(rnti_b) >= 0
        epc.tick(3)
        assert enb_b.queue_bytes(rnti_b) > 0
