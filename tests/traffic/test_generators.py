"""Tests for traffic generators."""

import pytest
from hypothesis import given, strategies as st

from repro.traffic.generators import (
    CbrSource,
    OnOffSource,
    PoissonSource,
    SaturatingSource,
)


class TestCbr:
    def test_long_run_rate_exact(self):
        src = CbrSource(8.0)  # 1000 B/ms
        total = sum(sum(src.packets(t)) for t in range(10_000))
        assert total == pytest.approx(10_000 * 1000, rel=0.01)

    def test_sub_packet_rates_accumulate(self):
        src = CbrSource(0.112, packet_bytes=1400)  # 14 B per TTI
        total = sum(sum(src.packets(t)) for t in range(1000))
        assert total == pytest.approx(14_000, rel=0.11)

    def test_start_stop_window(self):
        src = CbrSource(8.0, start_tti=100, stop_tti=200)
        assert src.packets(50) == []
        assert sum(src.packets(150)) > 0 or sum(src.packets(151)) > 0
        assert src.packets(200) == []

    def test_zero_rate(self):
        src = CbrSource(0.0)
        assert all(src.packets(t) == [] for t in range(100))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CbrSource(-1.0)
        with pytest.raises(ValueError):
            CbrSource(1.0, packet_bytes=0)

    @given(st.floats(min_value=0.01, max_value=100, allow_nan=False))
    def test_rate_property(self, rate):
        src = CbrSource(rate)
        total = sum(sum(src.packets(t)) for t in range(2000))
        expected = rate * 1000 / 8 * 2000
        assert total <= expected + 1400
        assert total >= expected - 1400


class TestSaturating:
    def test_constant_burst(self):
        src = SaturatingSource(burst_bytes=5000, packet_bytes=1400)
        pkts = src.packets(0)
        assert sum(pkts) == 5000
        assert pkts == [1400, 1400, 1400, 800]

    def test_start_delay(self):
        src = SaturatingSource(start_tti=10)
        assert src.packets(9) == []
        assert src.packets(10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            SaturatingSource(burst_bytes=0)


class TestPoisson:
    def test_mean_rate(self):
        src = PoissonSource(8.0, seed=1)
        total = sum(sum(src.packets(t)) for t in range(20_000))
        assert total == pytest.approx(20_000 * 1000, rel=0.05)

    def test_deterministic_per_seed(self):
        a = PoissonSource(5.0, seed=7)
        b = PoissonSource(5.0, seed=7)
        assert [a.packets(t) for t in range(100)] == \
               [b.packets(t) for t in range(100)]


class TestOnOff:
    def test_off_phase_silent(self):
        src = OnOffSource(8.0, on_ttis=10, off_ttis=10)
        on_bytes = sum(sum(src.packets(t)) for t in range(10))
        off_bytes = sum(sum(src.packets(t)) for t in range(10, 20))
        assert on_bytes > 0
        assert off_bytes == 0

    def test_duty_cycle_halves_rate(self):
        src = OnOffSource(8.0, on_ttis=50, off_ttis=50)
        total = sum(sum(src.packets(t)) for t in range(10_000))
        assert total == pytest.approx(10_000 * 500, rel=0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            OnOffSource(1.0, on_ttis=0, off_ttis=5)
