"""Tests for the fluid TCP model over the simulated radio."""

import pytest

from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi, SquareWaveCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue
from repro.traffic.tcp import TcpFlow


def build(cqi=10, rlc_buffer=None, **flow_kw):
    enb = EnodeB(1, rlc_buffer_bytes=rlc_buffer)
    ue = Ue("001", FixedCqi(cqi))
    rnti = enb.attach_ue(ue, tti=0)
    flow = TcpFlow(**flow_kw)
    flow.wire(enb, rnti, ue)
    return enb, ue, rnti, flow


def drive(enb, flow, ttis):
    for t in range(ttis):
        flow.tick(t)
        enb.tick(t)


class TestSaturation:
    @pytest.mark.parametrize("cqi", [2, 4, 10, 15])
    def test_unlimited_flow_approaches_capacity(self, cqi):
        enb, ue, rnti, flow = build(cqi=cqi, unlimited=True)
        drive(enb, flow, 8000)
        mbps = flow.meter.rate_mbps(7999)
        cap = capacity_mbps(cqi, 50)
        assert 0.8 * cap < mbps <= cap * 1.01

    def test_throughput_monotone_in_cqi(self):
        rates = []
        for cqi in (2, 6, 10, 14):
            enb, ue, rnti, flow = build(cqi=cqi, unlimited=True)
            drive(enb, flow, 5000)
            rates.append(flow.meter.rate_mbps(4999))
        assert rates == sorted(rates)


class TestCongestionControl:
    def test_slow_start_grows_window(self):
        enb, ue, rnti, flow = build(unlimited=True)
        cwnd0 = flow.cwnd
        drive(enb, flow, 200)
        assert flow.cwnd > cwnd0

    def test_buffer_overflow_triggers_loss_and_backoff(self):
        enb, ue, rnti, flow = build(cqi=2, rlc_buffer=30_000,
                                    unlimited=True)
        drive(enb, flow, 5000)
        assert flow.loss_events > 0
        # The flow still delivers close to the link rate (buffer >> BDP).
        assert flow.meter.rate_mbps(4999) > 0.7 * capacity_mbps(2, 50)

    def test_app_limited_flow_sends_exactly_offer(self):
        enb, ue, rnti, flow = build(cqi=15)
        flow.offer(50_000)
        drive(enb, flow, 2000)
        assert flow.delivered_bytes == 50_000
        assert flow.app_backlog == 0

    def test_app_delivery_callback(self):
        enb, ue, rnti, flow = build(cqi=15)
        got = []
        flow.on_app_delivered(lambda n, t: got.append(n))
        flow.offer(10_000)
        drive(enb, flow, 1000)
        assert sum(got) == 10_000


class TestRtt:
    def test_srtt_tracks_queueing_delay(self):
        enb, ue, rnti, flow = build(cqi=10, unlimited=True)
        drive(enb, flow, 3000)
        assert flow.srtt_ms is not None
        assert flow.srtt_ms >= 1.0

    def test_unused_flow_requires_wiring(self):
        flow = TcpFlow()
        with pytest.raises(RuntimeError):
            flow.tick(0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TcpFlow(mss=0)
        with pytest.raises(ValueError):
            TcpFlow(base_rtt_ms=-1)
        with pytest.raises(ValueError):
            TcpFlow().offer(-5)


class TestVariableChannel:
    def test_adapts_to_capacity_drop(self):
        enb = EnodeB(1)
        ue = Ue("001", SquareWaveCqi(12, 4, period_ttis=4000))
        rnti = enb.attach_ue(ue, tti=0)
        flow = TcpFlow(unlimited=True)
        flow.wire(enb, rnti, ue)
        drive(enb, flow, 8000)
        # During the low-CQI half the flow must have slowed down: the
        # average sits between the two capacities.
        avg = flow.delivered_bytes * 8 / (8000 * 1000)
        assert capacity_mbps(4, 50) < avg < capacity_mbps(12, 50)
