"""Tests for DASH video, ABR algorithms and the client model."""

import pytest

from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.traffic.dash import (
    AssistedAbr,
    DashClient,
    DashVideo,
    ThroughputAbr,
    WindowedThroughputAbr,
)
from repro.traffic.tcp import TcpFlow


def build_client(cqi=10, bitrates=(1.0, 2.0, 4.0), abr=None, **client_kw):
    enb = EnodeB(1)
    ue = Ue("001", FixedCqi(cqi))
    rnti = enb.attach_ue(ue, tti=0)
    flow = TcpFlow()
    flow.wire(enb, rnti, ue)
    video = DashVideo(list(bitrates), segment_duration_s=2.0,
                      vbr_peak_factor=1.2, seed=0)
    client = DashClient(video, flow, abr or AssistedAbr(),
                        start_tti=100, **client_kw)
    return enb, flow, video, client


def drive(enb, flow, client, ttis, start=0):
    for t in range(start, start + ttis):
        flow.tick(t)
        client.tick(t)
        enb.tick(t)


class TestDashVideo:
    def test_best_at_most(self):
        video = DashVideo([1.0, 2.0, 4.0])
        assert video.best_at_most(3.0) == 2.0
        assert video.best_at_most(10.0) == 4.0
        assert video.best_at_most(0.5) == 1.0  # lowest as fallback

    def test_segment_bytes_around_nominal(self):
        video = DashVideo([2.0], segment_duration_s=2.0,
                          vbr_peak_factor=1.5, seed=1)
        nominal = 2.0 * 1e6 * 2.0 / 8.0
        sizes = [video.segment_bytes(2.0) for _ in range(200)]
        assert min(sizes) >= nominal * 0.45
        assert max(sizes) <= nominal * 1.55
        mean = sum(sizes) / len(sizes)
        assert mean == pytest.approx(nominal, rel=0.1)

    def test_unknown_bitrate_rejected(self):
        with pytest.raises(ValueError):
            DashVideo([1.0]).segment_bytes(2.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DashVideo([])
        with pytest.raises(ValueError):
            DashVideo([-1.0])
        with pytest.raises(ValueError):
            DashVideo([1.0], segment_duration_s=0)
        with pytest.raises(ValueError):
            DashVideo([1.0], vbr_peak_factor=0.5)


class TestClientPlayback:
    def test_streams_and_builds_buffer(self):
        abr = AssistedAbr()
        abr.set_target(1.0)
        enb, flow, video, client = build_client(cqi=15, abr=abr)
        drive(enb, flow, client, 10_000)
        assert client.segments_completed > 3
        assert client.started
        assert client.total_freeze_ms() == 0

    def test_buffer_cap_pauses_downloads(self):
        abr = AssistedAbr()
        abr.set_target(1.0)
        enb, flow, video, client = build_client(cqi=15, abr=abr,
                                                buffer_cap_s=6.0)
        drive(enb, flow, client, 20_000)
        assert client.buffer_s <= 6.0 + video.segment_duration_s

    def test_unsustainable_bitrate_freezes(self):
        # 4 Mb/s video over a ~1 Mb/s link (CQI 2).
        abr = AssistedAbr()
        abr.set_target(4.0)
        enb, flow, video, client = build_client(cqi=2, abr=abr)
        drive(enb, flow, client, 30_000)
        assert client.freeze_count() > 0
        assert client.total_freeze_ms() > 0

    def test_bitrate_series_recorded(self):
        abr = AssistedAbr()
        abr.set_target(2.0)
        enb, flow, video, client = build_client(cqi=15, abr=abr)
        drive(enb, flow, client, 5_000)
        assert client.bitrate_series
        assert all(b == 2.0 for _, b in client.bitrate_series)
        assert client.mean_bitrate_mbps() == 2.0


class TestThroughputAbr:
    def test_starts_at_lowest(self):
        abr = ThroughputAbr()
        enb, flow, video, client = build_client(abr=abr)
        assert abr.choose(client, 0) == 1.0

    def test_climbs_with_fast_downloads(self):
        abr = ThroughputAbr(aggressiveness=1.4)
        enb, flow, video, client = build_client(cqi=15, abr=abr,
                                                buffer_cap_s=60.0)
        drive(enb, flow, client, 20_000)
        # Link capacity ~25 Mb/s: per-segment estimates push the player
        # to the top rung.
        assert client.bitrate_series[-1][1] == 4.0

    def test_panic_on_empty_buffer(self):
        abr = ThroughputAbr(panic_buffer_s=2.0)
        abr.estimate_mbps = 50.0
        enb, flow, video, client = build_client(abr=abr)
        client.buffer_ms = 0.0
        assert abr.choose(client, 0) == 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ThroughputAbr(ewma_alpha=0.0)


class TestWindowedAbr:
    def test_self_trapping_at_low_bitrate(self):
        """App-limited measurement keeps the estimate at the current
        bitrate: the player never leaves the bottom rung even though
        the link could carry the next one (Fig. 11a's default player)."""
        enb, flow, video, client = build_client(cqi=6, buffer_cap_s=12.0)
        client.abr = WindowedThroughputAbr(flow)  # ~5.3 Mb/s link
        drive(enb, flow, client, 40_000)
        assert all(b == 1.0 for _, b in client.bitrate_series[2:])

    def test_invalid_safety(self):
        enb, flow, video, client = build_client()
        with pytest.raises(ValueError):
            WindowedThroughputAbr(flow, safety=0.0)


class TestAssistedAbr:
    def test_follows_target(self):
        abr = AssistedAbr()
        enb, flow, video, client = build_client(abr=abr)
        abr.set_target(2.5)
        assert abr.choose(client, 0) == 2.0
        abr.set_target(9.0)
        assert abr.choose(client, 0) == 4.0

    def test_no_target_means_lowest(self):
        abr = AssistedAbr()
        enb, flow, video, client = build_client(abr=abr)
        assert abr.choose(client, 0) == 1.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            AssistedAbr().set_target(0.0)
