"""CBR delta-crediting, emission hints, and the EPC timing wheel.

The TRAFFIC phase used to poll every provisioned flow every TTI.  CBR
sources now credit elapsed TTIs on each call and expose a
``next_emission_tti`` hint, and :class:`EpcStub` parks hinted flows in
a timing wheel so they are only visited on TTIs where they can emit.
These tests pin the rate-exactness of sparse polling and the wheel's
lifecycle corners (pending adds, detached UEs, flow removal).
"""

from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.traffic.epc import EpcStub
from repro.traffic.generators import (
    _NEVER_TTI,
    CbrSource,
    OnOffSource,
    PoissonSource,
)


class TestCbrDeltaCrediting:
    def test_sparse_polling_preserves_rate(self):
        # Poll only on the hinted TTIs: the delivered byte total must
        # match the dense per-TTI poll of an identical source.
        dense = CbrSource(0.4)
        sparse = CbrSource(0.4)
        dense_bytes = sum(sum(dense.packets(t)) for t in range(2000))
        sparse_bytes = 0
        t = 0
        while t < 2000:
            sparse_bytes += sum(sparse.packets(t))
            t = sparse.next_emission_tti(t)
        # 0.4 Mbps == 50 B/TTI: 100 kB accrued, 71 full packets out.
        assert dense_bytes == 71 * 1400
        assert abs(sparse_bytes - dense_bytes) <= sparse.packet_bytes

    def test_hint_never_skips_an_emission(self):
        src = CbrSource(0.7, phase=0.3)
        probe = CbrSource(0.7, phase=0.3)
        # Prime both rate clocks (the first call credits a single TTI
        # regardless of its TTI argument) so the two stay comparable.
        assert probe.packets(0) == src.packets(0)
        emitting_ttis = [t for t in range(1, 1000) if probe.packets(t)]
        t = 0
        hinted = []
        while t < 1000:
            nxt = src.next_emission_tti(t)
            if nxt >= 1000:
                break
            if src.packets(nxt):
                hinted.append(nxt)
            t = nxt
        assert hinted == emitting_ttis

    def test_rate_clock_starts_at_first_use(self):
        # A flow provisioned long before its first poll must not burst
        # the entire backlog of skipped TTIs on the first call.
        src = CbrSource(1.0)  # 125 bytes/TTI
        first = src.packets(500)
        assert len(first) <= 1

    def test_zero_rate_never_emits(self):
        src = CbrSource(0.0)
        assert src.next_emission_tti(7) == _NEVER_TTI
        assert src.packets(7) == []

    def test_hint_respects_start_window(self):
        src = CbrSource(5.0, start_tti=100)
        assert src.next_emission_tti(0) >= 100

    def test_on_off_does_not_burst_after_off_period(self):
        # Regression guard for the delta-crediting interaction: the
        # off time must not accrue credit in the inner CBR clock.
        src = OnOffSource(1.0, on_ttis=20, off_ttis=80)
        total = sum(len(src.packets(t)) for t in range(500))
        # 1 Mbps == 125 B/TTI over 5 x 20 on-TTIs == 12.5 kB -> 8 full
        # packets.  If the 80-TTI off periods accrued credit in the
        # inner CBR clock the count would be 44 (62.5 kB).
        assert total == 12_500 // 1400


class TestEpcTimingWheel:
    def make_cell(self, cqi=15):
        enb = EnodeB(1)
        ue = Ue("001", FixedCqi(cqi))
        rnti = enb.attach_ue(ue, tti=0)
        return enb, ue, rnti

    def test_hinted_flow_delivers_exact_rate(self):
        enb, ue, rnti = self.make_cell()
        epc = EpcStub()
        stats = epc.add_downlink(CbrSource(0.4), enb, rnti)
        for t in range(2000):
            epc.tick(t)
        assert stats.offered_bytes == 71 * 1400

    def test_hintless_flow_polled_every_tti(self):
        enb, ue, rnti = self.make_cell()
        epc = EpcStub()
        stats = epc.add_uplink(PoissonSource(1.0, seed=3), enb, rnti)
        for t in range(500):
            epc.tick(t)
        assert stats.offered_bytes > 0

    def test_no_credit_while_ue_absent(self):
        # The wheel probes an absent UE's flow every TTI without
        # calling the source, so attach does not trigger a burst.
        enb = EnodeB(1)
        epc = EpcStub()
        stats = epc.add_downlink(CbrSource(1.0), enb, rnti=9999)
        for t in range(400):
            epc.tick(t)
        assert stats.offered_bytes == 0
        ue = Ue("001", FixedCqi(15))
        rnti = enb.attach_ue(ue, tti=400)
        epc._downlink[0].rnti = rnti  # repoint the provisioned flow
        epc.tick(400)
        epc.tick(401)
        # 1 Mbps == 125 B/TTI: at most one packet could be due by now.
        assert stats.offered_packets <= 1

    def test_remove_flows_cancels_wheel_entries(self):
        enb, ue, rnti = self.make_cell()
        epc = EpcStub()
        stats = epc.add_downlink(CbrSource(5.0), enb, rnti)
        for t in range(50):
            epc.tick(t)
        offered = stats.offered_bytes
        assert offered > 0
        assert epc.remove_flows_for(rnti) == 1
        for t in range(50, 200):
            epc.tick(t)  # stale wheel entries must be skipped
        assert stats.offered_bytes == offered

    def test_wheel_and_dense_polling_agree(self):
        # Same deployment twice: hinted (CBR via wheel) vs an
        # equivalent-rate source stripped of its hint.
        def run(strip_hint):
            enb, ue, rnti = self.make_cell()
            epc = EpcStub()
            src = CbrSource(0.8)
            if strip_hint:
                src.next_emission_tti = None  # type: ignore[assignment]
            stats = epc.add_downlink(src, enb, rnti)
            for t in range(1500):
                epc.tick(t)
            return stats.offered_bytes, stats.offered_packets

        assert run(False) == run(True)
