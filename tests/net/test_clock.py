"""Tests for the phased simulation clock."""

import pytest

from repro.net.clock import Phase, SimClock


class TestSimClock:
    def test_phases_run_in_order(self):
        clock = SimClock()
        order = []
        clock.register(Phase.RAN, lambda t: order.append("ran"))
        clock.register(Phase.TRAFFIC, lambda t: order.append("traffic"))
        clock.register(Phase.MASTER, lambda t: order.append("master"))
        clock.tick()
        assert order == ["traffic", "master", "ran"]

    def test_same_phase_registration_order(self):
        clock = SimClock()
        order = []
        clock.register(Phase.RAN, lambda t: order.append("a"))
        clock.register(Phase.RAN, lambda t: order.append("b"))
        clock.tick()
        assert order == ["a", "b"]

    def test_now_advances(self):
        clock = SimClock()
        seen = []
        clock.register(Phase.POST, seen.append)
        clock.run(5)
        assert seen == [0, 1, 2, 3, 4]
        assert clock.now == 5

    def test_subframe_and_frame(self):
        clock = SimClock()
        clock.run(23)
        assert clock.subframe == 3
        assert clock.frame == 2
        assert clock.now_ms == 23.0

    def test_run_ms(self):
        clock = SimClock()
        clock.run_ms(10.0)
        assert clock.now == 10

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            SimClock().run(-1)

    def test_unregister(self):
        clock = SimClock()
        seen = []
        fn = seen.append
        clock.register(Phase.POST, fn)
        clock.tick()
        clock.unregister(Phase.POST, fn)
        clock.unregister(Phase.POST, fn)  # second removal is a no-op
        clock.tick()
        assert seen == [0]

    def test_stop_from_callback(self):
        clock = SimClock()

        def stopper(t):
            if t == 2:
                clock.stop()

        clock.register(Phase.POST, stopper)
        clock.run(100)
        assert clock.now == 3  # stops after completing tti 2
