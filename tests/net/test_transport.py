"""Tests for protocol endpoints over emulated links."""

from repro.core.protocol.messages import (
    Category,
    EchoReply,
    EchoRequest,
    Header,
    StatsReply,
    UeStatsReport,
)
from repro.net.transport import ControlConnection


class TestControlConnection:
    def test_roundtrip_agent_to_master(self):
        conn = ControlConnection()
        msg = StatsReply(header=Header(agent_id=1, xid=9, tti=42),
                         ue_reports=[UeStatsReport(rnti=70, wb_cqi=12)])
        size = conn.agent_side.send(msg, now=0)
        assert size > 0
        received = conn.master_side.receive(now=0)
        assert len(received) == 1
        assert received[0] == msg

    def test_roundtrip_master_to_agent(self):
        conn = ControlConnection()
        conn.master_side.send(EchoRequest(header=Header(xid=1)), now=0)
        got = conn.agent_side.receive(now=0)
        assert isinstance(got[0], EchoRequest)

    def test_latency_applies_both_ways(self):
        conn = ControlConnection(rtt_ms=10)
        conn.agent_side.send(EchoReply(), now=0)
        assert conn.master_side.receive(now=4) == []
        assert len(conn.master_side.receive(now=5)) == 1

    def test_category_accounting_uses_message_category(self):
        conn = ControlConnection()
        conn.agent_side.send(StatsReply(), now=0)
        conn.agent_side.send(EchoReply(), now=0)
        assert conn.channel.uplink.category_bytes(Category.STATS) > 0
        assert conn.channel.uplink.category_bytes(
            Category.AGENT_MANAGEMENT) > 0

    def test_message_counters(self):
        conn = ControlConnection()
        conn.agent_side.send(EchoReply(), now=0)
        conn.master_side.receive(now=0)
        assert conn.agent_side.sent_messages == 1
        assert conn.master_side.received_messages == 1

    def test_set_rtt_runtime(self):
        conn = ControlConnection(rtt_ms=0)
        conn.set_rtt_ms(40)
        assert conn.rtt_ttis == 40
