"""Tests for the emulated control-channel links."""

import pytest

from repro.net.link import DuplexChannel, EmulatedLink


class TestEmulatedLink:
    def test_zero_latency_delivers_same_tti(self):
        link = EmulatedLink()
        link.send("a", 10, now=5)
        assert link.deliver_due(5) == ["a"]

    def test_latency_delays_delivery(self):
        link = EmulatedLink(one_way_latency_ms=3)
        link.send("a", 10, now=0)
        assert link.deliver_due(2) == []
        assert link.deliver_due(3) == ["a"]

    def test_fifo_order_preserved(self):
        link = EmulatedLink(one_way_latency_ms=1)
        link.send("a", 1, now=0)
        link.send("b", 1, now=0)
        link.send("c", 1, now=1)
        assert link.deliver_due(10) == ["a", "b", "c"]

    def test_runtime_latency_change(self):
        link = EmulatedLink(one_way_latency_ms=0)
        link.send("fast", 1, now=0)
        link.set_latency_ms(10)
        link.send("slow", 1, now=0)
        assert link.deliver_due(0) == ["fast"]
        assert link.deliver_due(9) == []
        assert link.deliver_due(10) == ["slow"]

    def test_fractional_latency_rounds_up(self):
        link = EmulatedLink(one_way_latency_ms=2.5)
        assert link.one_way_latency_ttis == 3

    def test_in_flight(self):
        link = EmulatedLink(one_way_latency_ms=5)
        link.send("a", 1, now=0)
        link.send("b", 1, now=0)
        assert link.in_flight() == 2
        link.deliver_due(5)
        assert link.in_flight() == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            EmulatedLink(one_way_latency_ms=-1)
        with pytest.raises(ValueError):
            EmulatedLink().send("x", -1, now=0)


class TestAccounting:
    def test_category_byte_counters(self):
        link = EmulatedLink()
        link.send("a", 100, now=0, category="stats")
        link.send("b", 50, now=0, category="stats")
        link.send("c", 10, now=0, category="sync")
        assert link.category_bytes("stats") == 150
        assert link.category_bytes("sync") == 10
        assert link.category_bytes("other") == 0
        assert link.total_bytes == 160
        assert link.total_messages == 3

    def test_mbps_conversion(self):
        link = EmulatedLink()
        # 125 bytes per TTI for 1000 TTIs = 1 Mb/s.
        for t in range(1000):
            link.send("x", 125, now=t, category="stats")
        assert link.category_mbps("stats", 1000) == pytest.approx(1.0)
        assert link.total_mbps(1000) == pytest.approx(1.0)
        assert link.total_mbps(0) == 0.0

    def test_breakdown(self):
        link = EmulatedLink()
        link.send("a", 1000, now=0, category="b_cat")
        link.send("a", 500, now=0, category="a_cat")
        breakdown = link.breakdown_mbps(1000)
        assert list(breakdown) == ["a_cat", "b_cat"]  # sorted

    def test_reset(self):
        link = EmulatedLink()
        link.send("a", 100, now=0)
        link.reset_counters()
        assert link.total_bytes == 0
        assert link.counters == {}


class TestDuplexChannel:
    def test_symmetric_rtt_split(self):
        chan = DuplexChannel(rtt_ms=20)
        assert chan.uplink.one_way_latency_ttis == 10
        assert chan.downlink.one_way_latency_ttis == 10
        assert chan.rtt_ttis == 20

    def test_set_rtt(self):
        chan = DuplexChannel()
        chan.set_rtt_ms(60)
        assert chan.rtt_ttis == 60
