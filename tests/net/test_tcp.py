"""Tests for the real asyncio TCP transport (repro.net.tcp)."""

import pytest

from repro.core.protocol.messages import (
    EchoReply,
    EchoRequest,
    Header,
    StatsReply,
    UeStatsReport,
)
from repro.net.tcp import (
    FrameDecoder,
    TcpConnectionFabric,
    TcpControlConnection,
    decode_envelope,
    encode_envelope,
    encode_varint,
)


class TestFraming:
    def test_envelope_roundtrip(self):
        deliver_tti, frame = decode_envelope(
            encode_envelope(1234, b"\x01payload")[1:])
        assert deliver_tti == 1234
        assert frame == b"\x01payload"

    def test_varint_matches_known_encoding(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"
        assert encode_varint(128) == b"\x80\x01"

    def test_negative_varint_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_decoder_whole_stream(self):
        stream = encode_envelope(7, b"aaa") + encode_envelope(8, b"bb")
        bodies = FrameDecoder().feed(stream)
        assert [decode_envelope(b) for b in bodies] == [
            (7, b"aaa"), (8, b"bb")]

    def test_decoder_byte_by_byte(self):
        """Any kernel chunking must parse, even one byte at a time."""
        stream = encode_envelope(300, b"x" * 200) + encode_envelope(301, b"y")
        decoder = FrameDecoder()
        bodies = []
        for i in range(len(stream)):
            bodies.extend(decoder.feed(stream[i:i + 1]))
        assert [decode_envelope(b) for b in bodies] == [
            (300, b"x" * 200), (301, b"y")]

    def test_decoder_split_length_varint(self):
        """A length prefix split across reads must reassemble."""
        envelope = encode_envelope(5, b"z" * 500)  # 2-byte length varint
        decoder = FrameDecoder()
        assert decoder.feed(envelope[:1]) == []
        bodies = decoder.feed(envelope[1:])
        assert decode_envelope(bodies[0]) == (5, b"z" * 500)

    def test_decoder_rejects_oversized_frame(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(ValueError, match="frame limit"):
            decoder.feed(encode_envelope(0, b"q" * 64))

    def test_truncated_deliver_tti_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_envelope(b"\x80")  # continuation bit, no next byte


@pytest.fixture
def fabric():
    fab = TcpConnectionFabric()
    yield fab
    fab.close()


class TestTcpControlConnection:
    """The ControlConnection contract, over a real kernel socket."""

    def test_roundtrip_agent_to_master(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        msg = StatsReply(header=Header(agent_id=1, xid=9, tti=42),
                         ue_reports=[UeStatsReport(rnti=70, wb_cqi=12)])
        size = conn.agent_side.send(msg, now=0)
        assert size > 0
        conn.flush_uplink(0)
        received = conn.master_side.receive(now=0)
        assert received == [msg]

    def test_roundtrip_master_to_agent(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.master_side.send(EchoRequest(header=Header(xid=1)), now=0)
        conn.flush_downlink(0)
        got = conn.agent_side.receive(now=0)
        assert isinstance(got[0], EchoRequest)

    def test_latency_applies_both_ways(self, fabric):
        conn = TcpControlConnection(fabric, 1, rtt_ms=10)
        conn.agent_side.send(EchoReply(), now=0)
        for tti in range(5):
            conn.flush_uplink(tti)
        assert conn.master_side.receive(now=4) == []
        conn.flush_uplink(5)
        assert len(conn.master_side.receive(now=5)) == 1

    def test_fault_injection_drops_frames(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.partition(0, 10)
        conn.agent_side.send(EchoReply(), now=1)
        conn.flush_uplink(1)
        assert conn.master_side.receive(now=1) == []
        assert conn.dropped_messages() == 1

    def test_partition_drops_in_flight(self, fabric):
        conn = TcpControlConnection(fabric, 1, rtt_ms=10)
        conn.agent_side.send(EchoReply(), now=0)  # due at TTI 5
        conn.partition(2, 8)
        for tti in range(10):
            conn.flush_uplink(tti)
        assert conn.master_side.receive(now=9) == []
        assert conn.channel.uplink.dropped_messages == 1

    def test_counters_match_emulated_contract(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.agent_side.send(EchoReply(), now=0)
        conn.flush_uplink(0)
        conn.master_side.receive(now=0)
        assert conn.agent_side.sent_messages == 1
        assert conn.master_side.received_messages == 1
        assert conn.channel.uplink.total_messages == 1
        assert conn.channel.uplink.delivered_messages == 1

    def test_set_rtt_runtime(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.set_rtt_ms(40)
        assert conn.rtt_ttis == 40

    def test_many_frames_preserve_order(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        for i in range(200):
            conn.agent_side.send(
                StatsReply(header=Header(agent_id=1, xid=i, tti=0)),
                now=0)
        conn.flush_uplink(0)
        received = conn.master_side.receive(now=0)
        assert [m.header.xid for m in received] == list(range(200))

    def test_duplicate_agent_id_rejected(self, fabric):
        TcpControlConnection(fabric, 1)
        with pytest.raises(ValueError, match="already"):
            TcpControlConnection(fabric, 1)

    def test_two_connections_are_isolated(self, fabric):
        first = TcpControlConnection(fabric, 1)
        second = TcpControlConnection(fabric, 2)
        first.agent_side.send(EchoReply(header=Header(agent_id=1)), now=0)
        first.flush_uplink(0)
        second.flush_uplink(0)
        assert second.master_side.receive(now=0) == []
        assert len(first.master_side.receive(now=0)) == 1


class TestStreamingMode:
    """Cluster-mode endpoints: immediate dispatch, stamp-gated receive."""

    def test_streaming_send_needs_no_flush(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.agent_side.streaming = True
        conn.agent_side.send(EchoReply(), now=3)
        conn.master_side.wait_parsed(1)
        # Stamp gating: not deliverable before the sender's TTI.
        assert conn.master_side.receive(now=2) == []
        assert len(conn.master_side.receive(now=3)) == 1

    def test_pending_frames_visible(self, fabric):
        conn = TcpControlConnection(fabric, 1)
        conn.agent_side.streaming = True
        conn.agent_side.send(EchoReply(), now=7)
        conn.master_side.wait_parsed(1)
        assert conn.master_side.pending_frames() == 1
        conn.master_side.receive(now=7)
        assert conn.master_side.pending_frames() == 0
