"""Transport conformance: emulated vs real-TCP, same observables.

The acceptance bar for the TCP transport is that a scenario run over
it produces the *same Tier-1-observable results* as over the emulated
links -- message counts, byte accounting, fault outcomes, RIB contents
and obs instrumentation, TTI for TTI.  These tests run the same
deployment on both transports and compare fingerprints.

Masters run with ``realtime=False``: the realtime task manager defers
applications on wall-clock budget overruns, which is deliberately
nondeterministic and orthogonal to transport behavior.
"""

import pytest

from repro import obs
from repro.core.apps.remote_scheduler import RemoteSchedulerApp
from repro.core.survive.snapshot import snapshot_rib
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.scenarios import FaultSpec
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource


def _build(transport, *, n_enbs=2, ues_per_enb=3, rtt_ms=2.0,
           schedule_ahead=4):
    sim = Simulation(with_master=True, realtime_master=False,
                     transport=transport)
    sim.master.add_app(RemoteSchedulerApp(schedule_ahead=schedule_ahead))
    for e in range(n_enbs):
        enb = sim.add_enb(seed=e)
        agent = sim.add_agent(enb, rtt_ms=rtt_ms)
        agent.mac.activate("dl_scheduling", "remote_stub")
        for i in range(ues_per_enb):
            ue = Ue(f"{e:02d}{i:04d}", FixedCqi(12))
            sim.add_ue(enb, ue)
            sim.add_downlink_traffic(enb, ue, CbrSource(2.0, start_tti=30))
    return sim


def _fingerprint(sim):
    """Every Tier-1 observable of a run, as one comparable structure."""
    links = {}
    for agent_id in sorted(sim.connections):
        conn = sim.connections[agent_id]
        for name, link in (("ul", conn.channel.uplink),
                           ("dl", conn.channel.downlink)):
            links[f"{agent_id}.{name}"] = {
                "total_messages": link.total_messages,
                "total_bytes": link.total_bytes,
                "delivered": link.delivered_messages,
                "dropped": link.dropped_messages,
                "categories": {c: k.bytes
                               for c, k in sorted(link.counters.items())},
            }
    return {
        "links": links,
        "endpoint_counts": {
            agent_id: (conn.agent_side.sent_messages,
                       conn.agent_side.received_messages,
                       conn.master_side.sent_messages,
                       conn.master_side.received_messages)
            for agent_id, conn in sorted(sim.connections.items())},
        "rib": snapshot_rib(sim.master.rib),
        "xid": sim.master._xid,
        "flows": [(f.rnti, f.stats.offered_bytes, f.stats.accepted_bytes,
                   f.stats.dropped_bytes)
                  for f in sim.epc._downlink],
    }


def _run(transport, *, fault=None, ttis=300, **kwargs):
    sim = _build(transport, **kwargs)
    try:
        if fault is not None:
            fault.apply(sim.connections[1])
        sim.run(ttis)
        return _fingerprint(sim)
    finally:
        sim.close()


class TestConformance:
    def test_clean_run_identical(self):
        assert _run("emulated") == _run("tcp")

    def test_zero_rtt_identical(self):
        assert _run("emulated", rtt_ms=0.0) == _run("tcp", rtt_ms=0.0)

    def test_loss_and_jitter_identical(self):
        fault = FaultSpec(loss=0.1, jitter_ms=3.0)
        assert (_run("emulated", fault=fault)
                == _run("tcp", fault=fault))

    def test_partition_identical(self):
        fault = FaultSpec(partitions=[(60, 160)])
        assert (_run("emulated", fault=fault)
                == _run("tcp", fault=fault))

    def test_runtime_rtt_change_identical(self):
        def run(transport):
            sim = _build(transport)
            try:
                sim.run(100)
                sim.connections[1].set_rtt_ms(8.0)
                sim.run(100)
                return _fingerprint(sim)
            finally:
                sim.close()
        assert run("emulated") == run("tcp")

    def test_restart_master_identical(self):
        """Checkpoint-restore respawn works over either transport."""
        def run(transport):
            sim = _build(transport)
            try:
                sim.master.checkpoints = None  # cold restart, no seed
                sim.run(120)
                sim.restart_master(restore=False)
                sim.run(180)
                return _fingerprint(sim)
            finally:
                sim.close()
        emulated, tcp = run("emulated"), run("tcp")
        assert emulated["links"] == tcp["links"]
        assert emulated["rib"] == tcp["rib"]


class TestObsConformance:
    """The obs instruments must fire identically on both transports."""

    @pytest.fixture(autouse=True)
    def _reset_obs(self):
        yield
        obs.disable()

    def _run_with_obs(self, transport):
        with obs.enabled_scope(trace=False) as ob:
            _run(transport, ttis=120)
            correlator = ob.correlator
            return {
                "tx": ob.registry.counter("net.tx.messages").value,
                "rx": ob.registry.counter("net.rx.messages").value,
                "tx_bytes": ob.registry.counter("net.tx.bytes").value,
                "rx_bytes": ob.registry.counter("net.rx.bytes").value,
                "records": len(correlator.records()),
                "latencies": sorted(correlator.latencies()),
            }

    def test_xid_lifecycle_identical(self):
        assert (self._run_with_obs("emulated")
                == self._run_with_obs("tcp"))
