"""Tests for control-channel fault injection: loss, jitter, partitions."""

import pytest

from repro.net.link import DuplexChannel, EmulatedLink
from repro.net.transport import ControlConnection


def drain(link, now):
    return link.deliver_due(now)


class TestLoss:
    def test_full_loss_drops_everything(self):
        link = EmulatedLink(loss_probability=1.0)
        for t in range(10):
            assert link.send(f"m{t}", 100, now=t) == -1
        assert link.dropped_messages == 10
        assert link.dropped_bytes == 1000
        assert drain(link, 100) == []

    def test_dropped_messages_not_in_byte_accounting(self):
        link = EmulatedLink(loss_probability=1.0)
        link.send("x", 100, now=0)
        assert link.total_bytes == 0
        assert link.total_messages == 0

    def test_partial_loss_is_roughly_proportional(self):
        link = EmulatedLink(loss_probability=0.3, seed=7)
        n = 2000
        delivered = sum(1 for t in range(n)
                        if link.send("m", 10, now=t) >= 0)
        assert 0.6 * n < delivered < 0.8 * n

    def test_loss_validation(self):
        link = EmulatedLink()
        with pytest.raises(ValueError):
            link.set_loss(1.5)
        with pytest.raises(ValueError):
            link.set_loss(-0.1)


class TestJitter:
    def test_jitter_delays_but_preserves_fifo(self):
        link = EmulatedLink(one_way_latency_ms=5.0, jitter_ms=20.0, seed=3)
        deliveries = [link.send(i, 10, now=0) for i in range(50)]
        # Every delivery at or after the base latency, FIFO throughout.
        assert all(d >= 5 for d in deliveries)
        assert deliveries == sorted(deliveries)
        received = []
        for t in range(0, 40):
            received.extend(drain(link, t))
        assert received == list(range(50))

    def test_jitter_actually_spreads_deliveries(self):
        link = EmulatedLink(jitter_ms=30.0, seed=5)
        deliveries = {link.send(i, 10, now=0) for i in range(50)}
        assert len(deliveries) > 1

    def test_jitter_validation(self):
        link = EmulatedLink()
        with pytest.raises(ValueError):
            link.set_jitter_ms(-1.0)


class TestPartition:
    def test_down_link_drops_offered_traffic(self):
        link = EmulatedLink()
        link.set_up(False)
        assert link.send("x", 10, now=0) == -1
        assert link.dropped_messages == 1

    def test_going_down_drops_in_flight(self):
        link = EmulatedLink(one_way_latency_ms=10.0)
        link.send("a", 10, now=0)
        link.send("b", 20, now=1)
        assert link.in_flight() == 2
        link.set_up(False)
        assert link.in_flight() == 0
        assert link.dropped_messages == 2
        assert link.dropped_bytes == 30
        assert drain(link, 100) == []

    def test_scripted_fail_and_heal(self):
        link = EmulatedLink()
        link.fail_at(10)
        link.heal_at(20)
        assert link.send("before", 10, now=5) == 5
        assert link.send("during", 10, now=12) == -1
        assert link.send("after", 10, now=25) == 25
        assert drain(link, 30) == ["before", "after"]

    def test_heal_applies_on_delivery_too(self):
        """A quiet receiver still advances the scripted event timeline."""
        link = EmulatedLink()
        link.fail_at(5)
        drain(link, 6)
        assert not link.up

    def test_duplex_partition_hits_both_directions(self):
        chan = DuplexChannel(rtt_ms=0.0)
        chan.partition(10, 20)
        assert chan.uplink.send("up", 10, now=12) == -1
        assert chan.downlink.send("down", 10, now=12) == -1
        assert chan.dropped_messages() == 2
        assert chan.uplink.send("up2", 10, now=20) == 20

    def test_empty_partition_window_rejected(self):
        chan = DuplexChannel()
        with pytest.raises(ValueError):
            chan.partition(20, 20)
        with pytest.raises(ValueError):
            chan.partition(20, 10)

    def test_overlapping_partition_windows_rejected(self):
        # Overlap would silently truncate the later window: the first
        # window's heal event brings the link up mid-partition.
        chan = DuplexChannel()
        chan.partition(10, 20)
        with pytest.raises(ValueError, match="overlaps"):
            chan.partition(15, 25)
        chan.partition(30, 40)  # disjoint windows stay legal


class TestConnectionFaults:
    def test_connection_partition_and_counters(self):
        conn = ControlConnection(rtt_ms=2.0)
        from repro.core.protocol.messages import EchoRequest, Header
        conn.partition(5, 10)
        conn.agent_side.send(EchoRequest(header=Header(xid=1)), now=6)
        assert conn.master_side.receive(now=50) == []
        assert conn.dropped_messages() == 1
        conn.agent_side.send(EchoRequest(header=Header(xid=2)), now=11)
        got = conn.master_side.receive(now=50)
        assert len(got) == 1 and got[0].header.xid == 2

    def test_connection_loss_and_jitter_passthrough(self):
        conn = ControlConnection()
        conn.set_loss(1.0)
        from repro.core.protocol.messages import EchoRequest, Header
        conn.agent_side.send(EchoRequest(header=Header(xid=1)), now=0)
        assert conn.dropped_messages() == 1
        conn.set_loss(0.0)
        conn.set_jitter_ms(5.0)  # validates and installs on both links
        conn.agent_side.send(EchoRequest(header=Header(xid=2)), now=10)
        assert conn.master_side.receive(now=30)
