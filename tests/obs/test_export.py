"""Exporters: JSONL, Prometheus exposition format, Chrome trace document."""

import json

from repro import obs
from repro.obs.export import (
    chrome_trace,
    metrics_jsonl,
    prometheus_text,
    validate_chrome_trace,
)
from repro.obs.registry import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("net.tx.messages").inc(3)
    r.gauge("master.rib_updater.drained_messages").set(2.0)
    h = r.histogram("agent.tick_us", buckets=(10.0, 100.0))
    h.observe(5.0)
    h.observe(50.0)
    h.observe(500.0)
    return r


class TestJsonl:
    def test_one_parseable_object_per_metric(self):
        text = metrics_jsonl(_populated_registry())
        lines = text.strip().split("\n")
        assert len(lines) == 3
        docs = [json.loads(line) for line in lines]
        names = [d["name"] for d in docs]
        assert names == sorted(names)
        by_name = {d["name"]: d for d in docs}
        assert by_name["net.tx.messages"]["value"] == 3
        assert by_name["agent.tick_us"]["count"] == 3

    def test_empty_registry_empty_output(self):
        assert metrics_jsonl(MetricsRegistry()) == ""


class TestPrometheus:
    def test_exposition_format(self):
        text = prometheus_text(_populated_registry())
        assert "# TYPE net_tx_messages counter" in text
        assert "net_tx_messages 3" in text
        assert "# TYPE master_rib_updater_drained_messages gauge" in text
        assert "# TYPE agent_tick_us histogram" in text
        # Cumulative le buckets, +Inf last, sum and count series.
        assert 'agent_tick_us_bucket{le="10.0"} 1' in text
        assert 'agent_tick_us_bucket{le="100.0"} 2' in text
        assert 'agent_tick_us_bucket{le="+Inf"} 3' in text
        assert "agent_tick_us_sum 555.0" in text
        assert "agent_tick_us_count 3" in text
        assert text.endswith("\n")

    def test_no_dots_in_exported_names(self):
        text = prometheus_text(_populated_registry())
        for line in text.splitlines():
            name = line.split()[1] if line.startswith("#") else line.split()[0]
            assert "." not in name.split("{")[0]


class TestChromeTraceDocument:
    def test_embeds_cdf_and_summary(self):
        with obs.enabled_scope() as ob:
            with ob.tracer.span("master", "tick", tti=1):
                pass
            key = ("enb1", "dl", "DlMacCommand", 1)
            ob.correlator.on_enqueue(*key, 10)
            ob.correlator.on_wire(*key, 10)
            ob.correlator.on_deliver(*key, 11)
            ob.correlator.on_handle(*key, 11)
            doc = chrome_trace(ob, extra={"scenario": "unit"})
        assert validate_chrome_trace(doc) == []
        other = doc["otherData"]
        assert other["control_latency_cdf"]["dl"] == [(1.0, 1.0)]
        assert other["control_latency_cdf"]["ul"] == []
        assert other["control_latency_summary"]["completed"] == 1
        assert other["scenario"] == "unit"

    def test_document_round_trips_through_json(self):
        with obs.enabled_scope() as ob:
            with ob.tracer.span("transport", "send:StatsRequest", tti=3):
                pass
            doc = chrome_trace(ob)
        reloaded = json.loads(json.dumps(doc))
        assert validate_chrome_trace(reloaded) == []
