"""Shared fixtures: every obs test leaves the global backend disabled."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    obs.disable()
