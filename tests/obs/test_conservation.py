"""Link conservation: every offered byte is delivered, dropped, or in flight."""

from repro import obs
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.net.link import DuplexChannel, EmulatedLink
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource


def assert_conserved(link: EmulatedLink) -> None:
    assert link.offered_bytes == (link.delivered_bytes + link.dropped_bytes
                                  + link.in_flight_bytes())
    assert link.offered_messages == (link.delivered_messages
                                     + link.dropped_messages
                                     + link.in_flight())


class TestLinkAccounting:
    def test_clean_link_conserves(self):
        link = EmulatedLink(one_way_latency_ms=3.0)
        for tti in range(50):
            link.send(f"m{tti}", 100, now=tti)
            link.deliver_due(tti)
        assert_conserved(link)
        assert link.dropped_bytes == 0
        assert link.in_flight() == 3  # latency keeps 3 TTIs of data airborne

    def test_random_loss_conserves(self):
        link = EmulatedLink(one_way_latency_ms=2.0, loss_probability=0.3,
                            seed=7)
        for tti in range(400):
            link.send(f"m{tti}", 50 + tti % 17, now=tti)
            link.deliver_due(tti)
        assert link.dropped_messages > 0
        assert link.delivered_messages > 0
        assert_conserved(link)

    def test_partition_drops_in_flight_and_conserves(self):
        link = EmulatedLink(one_way_latency_ms=5.0)
        link.fail_at(20)
        link.heal_at(40)
        for tti in range(80):
            link.send(f"m{tti}", 200, now=tti)
            link.deliver_due(tti)
        # Offers during [20, 40) plus in-flight data at the failure
        # instant are lost.
        assert link.dropped_messages >= 20
        assert_conserved(link)

    def test_conservation_after_drain(self):
        link = EmulatedLink(one_way_latency_ms=10.0, loss_probability=0.1,
                            seed=3)
        for tti in range(100):
            link.send(f"m{tti}", 64, now=tti)
        link.deliver_due(500)  # drain everything still airborne
        assert link.in_flight() == 0
        assert link.offered_bytes == link.delivered_bytes + link.dropped_bytes


class TestChannelUnderFaults:
    def test_duplex_partition_window(self):
        channel = DuplexChannel(rtt_ms=10.0)
        channel.partition(30, 60)
        for tti in range(120):
            channel.uplink.send(f"u{tti}", 80, now=tti)
            channel.downlink.send(f"d{tti}", 120, now=tti)
            channel.uplink.deliver_due(tti)
            channel.downlink.deliver_due(tti)
        for link in channel.links:
            assert link.dropped_messages > 0
            assert_conserved(link)


class TestSimConservation:
    def test_agented_sim_with_loss_conserves_and_correlates(self):
        """tx accounting holds end-to-end under injected loss."""
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        agent = sim.add_agent(enb, rtt_ms=6)
        ue = Ue("001", FixedCqi(10))
        sim.add_ue(enb, ue)
        sim.add_downlink_traffic(enb, ue, CbrSource(1.0))
        connection = sim.connections[agent.agent_id]
        connection.channel.set_loss(0.2)
        with obs.enabled_scope(trace=False) as ob:
            sim.run(800)
            for link in connection.channel.links:
                assert_conserved(link)
                assert link.dropped_messages > 0
            # The correlator saw the same wire drops the link counted.
            assert ob.correlator.dropped_messages > 0
            assert ob.correlator.dropped_messages <= (
                connection.channel.dropped_messages())
