"""Trace recorder: span mechanics and Chrome trace-event schema."""

from repro.obs.export import validate_chrome_trace
from repro.obs.trace import NullTraceRecorder, TraceRecorder


class TestSpans:
    def test_span_records_complete_event(self):
        t = TraceRecorder()
        with t.span("scheduler", "round_robin", tti=7, cell=10):
            pass
        assert len(t.events) == 1
        event = t.events[0]
        assert event["ph"] == "X"
        assert event["name"] == "round_robin"
        assert event["cat"] == "scheduler"
        assert event["dur"] >= 0.0
        assert event["args"] == {"tti": 7, "cell": 10}

    def test_tid_stable_per_component(self):
        t = TraceRecorder()
        with t.span("a", "x"):
            pass
        with t.span("b", "y"):
            pass
        with t.span("a", "z"):
            pass
        tids = [e["tid"] for e in t.events]
        assert tids[0] == tids[2] != tids[1]
        assert t.components() == ["a", "b"]

    def test_instant_event(self):
        t = TraceRecorder()
        t.instant("agent", "disconnected", tti=5)
        event = t.events[0]
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"]["tti"] == 5

    def test_cap_drops_beyond_max_events(self):
        t = TraceRecorder(max_events=2)
        for i in range(5):
            t.instant("c", f"e{i}")
        assert len(t.events) == 2
        assert t.dropped_events == 3
        assert t.to_chrome()["otherData"]["dropped_events"] == 3


class TestChromeDocument:
    def test_document_validates_and_names_threads(self):
        t = TraceRecorder()
        with t.span("task_manager", "apps", tti=1):
            pass
        doc = t.to_chrome(extra={"note": "hi"})
        assert validate_chrome_trace(doc) == []
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert "task_manager" in names
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["note"] == "hi"

    def test_validator_flags_bad_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                "pid": 0, "tid": 1, "dur": -1}]}
        assert any("dur" in e for e in validate_chrome_trace(bad))
        missing_ts = {"traceEvents": [{"name": "x", "ph": "i",
                                       "pid": 0, "tid": 1}]}
        assert any("ts" in e for e in validate_chrome_trace(missing_ts))

    def test_empty_trace_is_reported(self):
        assert any("empty" in e
                   for e in validate_chrome_trace({"traceEvents": []}))


class TestNullRecorder:
    def test_noop(self):
        t = NullTraceRecorder()
        span = t.span("a", "b", tti=1)
        with span:
            pass
        t.instant("a", "c")
        assert t.events == ()
        assert t.components() == []
        assert t.to_chrome()["traceEvents"] == []

    def test_shared_span_instance(self):
        t = NullTraceRecorder()
        assert t.span("a", "b") is t.span("c", "d")
