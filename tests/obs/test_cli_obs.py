"""CLI observability subcommands: ``repro trace`` and ``repro stats``."""

import json

from repro import obs
from repro.cli import OBS_SCENARIOS, main
from repro.obs.export import trace_components, validate_chrome_trace

RUN = ["--ttis", "400"]  # short runs keep the suite fast


class TestTraceCommand:
    def test_writes_valid_trace_with_platform_components(self, tmp_path,
                                                         capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--scenario", "quickstart", *RUN,
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(trace_components(doc)) >= 4
        cdf = doc["otherData"]["control_latency_cdf"]
        assert cdf["ul"] and cdf["dl"]
        printed = capsys.readouterr().out
        assert "control latency" in printed
        assert "perfetto" in printed

    def test_leaves_obs_disabled(self, tmp_path):
        main(["trace", *RUN, "--out", str(tmp_path / "t.json")])
        assert not obs.get().enabled

    def test_scenarios_registered(self):
        assert {"quickstart", "centralized"} <= set(OBS_SCENARIOS)


class TestStatsCommand:
    def test_prometheus_to_stdout(self, capsys):
        assert main(["stats", "--scenario", "quickstart", *RUN]) == 0
        out = capsys.readouterr().out
        assert "# TYPE net_tx_messages counter" in out
        assert "master_cycle_core_ms_bucket" in out
        assert not obs.get().enabled

    def test_jsonl_to_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.jsonl"
        assert main(["stats", *RUN, "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().strip().split("\n")
        names = {json.loads(line)["name"] for line in lines}
        assert "net.tx.messages" in names
        assert "mac.sched.runs" in names
        assert "wrote" in capsys.readouterr().out
