"""xid correlator: lifecycle stage semantics and an end-to-end run."""

from repro import obs
from repro.obs.correlate import (
    DOWNLINK,
    UPLINK,
    NullCorrelator,
    XidCorrelator,
)
from repro.obs.export import chrome_trace, trace_components
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import CbrSource

KEY = ("enb1", UPLINK, "StatsReply", 7)


def _complete(c, *, enqueue=10, wire=10, deliver=12, handle=12, key=KEY):
    c.on_enqueue(*key, enqueue)
    c.on_wire(*key, wire)
    c.on_deliver(*key, deliver)
    c.on_handle(*key, handle)


class TestStages:
    def test_full_lifecycle(self):
        c = XidCorrelator()
        _complete(c)
        assert c.in_flight() == 0
        [record] = c.completed
        assert record.stage_ttis() == {"enqueue": 10, "wire": 10,
                                       "deliver": 12, "handle": 12}
        assert record.latency_ttis == 2
        assert record.complete

    def test_stage_ordering_is_monotone(self):
        # Even if callers report out-of-order TTIs, the record is
        # clamped so enqueue <= wire <= deliver <= handle.
        c = XidCorrelator()
        _complete(c, enqueue=10, wire=8, deliver=5, handle=3)
        [record] = c.completed
        stages = record.stage_ttis()
        assert (stages["enqueue"] <= stages["wire"]
                <= stages["deliver"] <= stages["handle"])

    def test_deliver_without_wire_ignored(self):
        c = XidCorrelator()
        c.on_enqueue(*KEY, 1)
        c.on_deliver(*KEY, 2)
        c.on_handle(*KEY, 3)
        assert c.completed == []
        assert c.in_flight() == 1

    def test_handle_of_unknown_xid_ignored(self):
        c = XidCorrelator()
        c.on_handle("x", DOWNLINK, "DlMacCommand", 99, 5)
        assert c.completed == []

    def test_dropped_on_wire_never_completes(self):
        c = XidCorrelator()
        c.on_enqueue(*KEY, 1)
        c.on_wire(*KEY, 1, dropped=True)
        c.on_deliver(*KEY, 2)
        c.on_handle(*KEY, 3)
        assert c.completed == []
        assert c.dropped_messages == 1
        assert c.in_flight() == 0

    def test_reenqueue_orphans_open_record(self):
        c = XidCorrelator()
        c.on_enqueue(*KEY, 1)
        c.on_wire(*KEY, 1)
        c.on_enqueue(*KEY, 5)  # xid reused before completion
        c.on_wire(*KEY, 5)
        c.on_deliver(*KEY, 6)
        c.on_handle(*KEY, 6)
        assert c.orphaned == 1
        [record] = c.completed
        assert record.enqueue == 5

    def test_completed_cap(self):
        c = XidCorrelator(max_completed=2)
        for xid in range(4):
            _complete(c, key=("p", UPLINK, "m", xid))
        assert len(c.completed) == 2
        assert c.completed_dropped == 2


class TestQueries:
    def test_directional_latencies_and_cdf(self):
        c = XidCorrelator()
        for xid, lat in enumerate((1, 1, 3)):
            _complete(c, enqueue=0, wire=0, deliver=lat, handle=lat,
                      key=("p", UPLINK, "m", xid))
        _complete(c, enqueue=0, wire=0, deliver=9, handle=9,
                  key=("p", DOWNLINK, "m", 0))
        assert sorted(c.latencies(UPLINK)) == [1, 1, 3]
        assert c.latencies(DOWNLINK) == [9]
        cdf = c.cdf(UPLINK)
        assert cdf[0] == (1.0, 1 / 3)
        assert cdf[-1] == (3.0, 1.0)
        summary = c.summary()
        assert summary["completed"] == 4
        assert summary[UPLINK]["count"] == 3
        assert summary[DOWNLINK]["max"] == 9.0

    def test_empty_percentile_zero(self):
        assert XidCorrelator().percentile(50) == 0.0


class TestNullCorrelator:
    def test_all_stages_noop(self):
        c = NullCorrelator()
        _complete(c)
        assert c.records() == []
        assert c.cdf() == []
        assert c.in_flight() == 0
        assert c.summary()["completed"] == 0


class TestEndToEnd:
    def _run_sim(self, ttis=600):
        sim = Simulation(with_master=True)
        enb = sim.add_enb()
        sim.add_agent(enb, rtt_ms=4)
        ue = Ue("001", FixedCqi(12))
        sim.add_ue(enb, ue)
        sim.add_downlink_traffic(enb, ue, CbrSource(2.0))
        sim.run(ttis)
        return sim

    def test_sim_records_ordered_lifecycles(self):
        with obs.enabled_scope() as ob:
            self._run_sim()
            records = ob.correlator.records()
            assert records, "agented sim should complete xid lifecycles"
            for record in records:
                assert (record.enqueue <= record.wire <= record.deliver
                        <= record.handle), record
            # rtt 4 ms -> one-way 2 TTIs: no completed message can be
            # faster than the link latency.
            assert min(r.latency_ttis for r in records) >= 2

    def test_sim_trace_covers_platform_components(self):
        with obs.enabled_scope() as ob:
            self._run_sim()
            doc = chrome_trace(ob)
            components = trace_components(doc)
            for expected in ("scheduler", "task_manager", "agent_dispatch",
                             "transport"):
                assert expected in components, components
            assert len(components) >= 4
            cdf = doc["otherData"]["control_latency_cdf"]
            assert cdf[UPLINK], "uplink CDF should not be empty"
