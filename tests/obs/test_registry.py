"""Metrics registry semantics: instruments, buckets, null backend."""

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    percentile,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("a.b")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge("a.b")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.max_value == 3.0
        g.add(2.0)
        assert g.value == 3.0
        assert g.updates == 3


class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        # A value exactly on an edge lands in that bucket (le semantics).
        h.observe(1.0)
        h.observe(2.0)
        h.observe(1.5)
        h.observe(100.0)  # overflow bucket
        assert h.bucket_counts == [1, 2, 0, 1]
        cumulative = h.cumulative_buckets()
        assert cumulative == [(1.0, 1), (2.0, 3), (5.0, 3),
                              (float("inf"), 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)

    def test_percentiles_over_window(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.p50 == pytest.approx(50.5)
        assert h.p99 == pytest.approx(99.01)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").p95 == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_default_buckets_cover_ms_scale(self):
        assert DEFAULT_BUCKETS[0] < 0.01
        assert DEFAULT_BUCKETS[-1] >= 1000.0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x.y") is r.counter("x.y")
        assert len(r) == 1

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x.y")
        with pytest.raises(TypeError):
            r.gauge("x.y")

    def test_invalid_name_rejected(self):
        r = MetricsRegistry()
        for bad in ("Caps.name", "1leading", "trailing.", "sp ace"):
            with pytest.raises(ValueError):
                r.counter(bad)

    def test_snapshot_shapes(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(0.3)
        snap = r.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"][-1][0] == float("inf")


class TestNullBackend:
    def test_disabled_by_default(self):
        assert obs.get().enabled is False
        assert isinstance(obs.get().registry, NullRegistry)

    def test_null_instruments_are_shared_noops(self):
        r = NullRegistry()
        c1, c2 = r.counter("a"), r.counter("b")
        assert c1 is c2  # shared singleton, no allocation per call
        c1.inc(100)
        assert c1.value == 0
        g = r.gauge("g")
        g.set(5.0)
        assert g.value == 0.0
        h = r.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        assert h.percentile(99) == 0.0
        assert r.snapshot() == {}
        assert len(r) == 0

    def test_enable_disable_roundtrip(self):
        ob = obs.enable()
        assert obs.get() is ob
        assert obs.get().enabled
        obs.get().registry.counter("x").inc()
        assert obs.get().registry.counter("x").value == 1
        obs.disable()
        assert not obs.get().enabled

    def test_enabled_scope_restores_previous(self):
        with obs.enabled_scope() as ob:
            assert obs.get() is ob
        assert not obs.get().enabled


class TestPercentileHelper:
    def test_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
