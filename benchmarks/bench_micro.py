"""Microbenchmarks of the platform's hot paths.

These are conventional pytest-benchmark measurements (many rounds) of
the per-TTI building blocks: protocol encode/decode, scheduler
invocation, RIB update, the master's full cycle, and the data plane's
plan+transmit step.  They bound the reproduction's simulation rate and
give a Python-level analogue of the paper's feasibility argument (all
per-TTI work far below 1 ms for realistic cell sizes).
"""

from __future__ import annotations


from repro.core.controller.rib import Rib
from repro.core.controller.rib_updater import RibUpdater
from repro.core.policy import PolicyDocument, build_policy
from repro.core.protocol import codec
from repro.core.protocol.messages import (
    Header,
    StatsReply,
    UeStatsReport,
)
from repro.lte.enodeb import EnodeB
from repro.lte.mac.dci import SchedulingContext, UeView
from repro.lte.mac.schedulers import (
    FairShareScheduler,
    ProportionalFairScheduler,
)
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.scenarios import centralized_scheduling

N_UES = 16


def _stats_reply() -> StatsReply:
    return StatsReply(
        header=Header(agent_id=1, xid=3, tti=1000),
        ue_reports=[UeStatsReport(
            rnti=70 + i, queues={1: 0, 3: 150_000}, wb_cqi=12,
            wb_cqi_clear=13, subband_cqi=[12] * 9,
            subband_sinr_db_x10=[180] * 9, harq_states=[0] * 8,
            rlc_bytes_in=10 ** 7, rlc_bytes_out=10 ** 7,
            pdcp_tx_bytes=10 ** 7, pdcp_rx_bytes=10 ** 7,
            rx_bytes_total=10 ** 8, rrc_state=3)
            for i in range(N_UES)])


def test_codec_encode_stats(benchmark):
    reply = _stats_reply()
    frame = benchmark(lambda: codec.encode(reply))
    assert len(frame) > 100


def test_codec_decode_stats(benchmark):
    frame = codec.encode(_stats_reply())
    message = benchmark(lambda: codec.decode(frame))
    assert len(message.ue_reports) == N_UES


def test_scheduler_fair_share(benchmark):
    sched = FairShareScheduler()
    ctx = SchedulingContext(
        tti=0, n_prb=50,
        ues=[UeView(rnti=70 + i, queue_bytes=10 ** 6, cqi=12)
             for i in range(N_UES)])
    out = benchmark(lambda: sched.schedule(ctx))
    assert out


def test_scheduler_proportional_fair(benchmark):
    sched = ProportionalFairScheduler()
    ctx = SchedulingContext(
        tti=0, n_prb=50,
        ues=[UeView(rnti=70 + i, queue_bytes=10 ** 6, cqi=5 + i % 10)
             for i in range(N_UES)])
    out = benchmark(lambda: sched.schedule(ctx))
    assert out


def test_rib_update_apply(benchmark):
    rib = Rib()
    updater = RibUpdater(rib)
    reply = _stats_reply()

    def apply():
        updater.apply(1, reply, now=1000)

    benchmark(apply)
    assert rib.agent(1)


def test_policy_parse(benchmark):
    text = build_policy("mac", "dl_scheduling", behavior="sliced",
                        parameters={"fractions": {"mno": 0.6, "mvno": 0.4}})
    doc = benchmark(lambda: PolicyDocument.from_text(text))
    assert doc.modules["mac"]


def test_enodeb_tti(benchmark):
    enb = EnodeB(1)
    rntis = [enb.attach_ue(Ue(f"{i}", FixedCqi(12)), tti=0)
             for i in range(N_UES)]
    state = {"t": 0}

    def tick():
        t = state["t"]
        for rnti in rntis:
            enb.enqueue_dl(rnti, 1400, t)
        enb.tick(t)
        state["t"] += 1

    benchmark(tick)


def test_full_platform_tti(benchmark):
    """One complete TTI of a 16-UE centralized deployment."""
    sc = centralized_scheduling(ues_per_enb=N_UES, cqi=12)
    sc.sim.run(200)  # warm-up: handshake, subscriptions
    benchmark(sc.sim.clock.tick)
