"""Fig. 9: control-channel latency vs schedule-ahead time.

A COTS UE is scheduled in the downlink by a centralized application
parameterized to issue decisions *n* subframes ahead, while netem-style
latency degrades the master--agent channel.  The paper's findings:

* Lower triangle (ahead < RTT): zero throughput -- every decision
  misses its deadline and the UE cannot even complete attachment.
* On/above the diagonal: scheduling works even at high RTT, with
  throughput gradually decaying as RTT and schedule-ahead grow (stale
  CQI leads to wrong MCS choices; predictions reach further into the
  future).
"""

from __future__ import annotations

import math

from conftest import print_table, run_once

from repro import obs
from repro.lte.phy.channel import GaussMarkovSinr
from repro.sim.scenarios import centralized_scheduling

RTTS_MS = [0, 10, 20, 30, 40, 60]
AHEADS = [0, 8, 16, 24, 32, 48, 64, 80]
RUN_TTIS = 4000


def run_cell(rtt_ms: int, ahead: int) -> float:
    sc = centralized_scheduling(
        ues_per_enb=1, rtt_ms=rtt_ms, schedule_ahead=ahead,
        load_factor=1.5,
        channel_factory=lambda e, i: GaussMarkovSinr(
            22.0, sigma_db=2.0, reversion=0.02, seed=11))
    sc.sim.run(RUN_TTIS)
    return sc.ues_per_enb[0][0].meter.mean_mbps(RUN_TTIS)


def test_fig9_latency_vs_schedule_ahead(benchmark):
    def experiment():
        grid = {}
        for rtt in RTTS_MS:
            for ahead in AHEADS:
                grid[(rtt, ahead)] = run_cell(rtt, ahead)
        return grid

    grid = run_once(benchmark, experiment)

    rows = []
    for rtt in RTTS_MS:
        rows.append([f"RTT {rtt:>2} ms"]
                    + [grid[(rtt, ahead)] for ahead in AHEADS])
    print_table(
        "Fig 9 -- downlink throughput (Mb/s) over (RTT, schedule-ahead) "
        "(paper: zero below the diagonal ahead<RTT; ~25 Mb/s ceiling "
        "decaying gradually with RTT)",
        ["config"] + [f"ahead {a}" for a in AHEADS], rows)

    # (1) The lower-triangular region is zero: decisions expire and the
    # UE cannot attach.
    for rtt in RTTS_MS:
        for ahead in AHEADS:
            if ahead < rtt:
                assert grid[(rtt, ahead)] == 0.0, (rtt, ahead)
    # (2) On/above the diagonal the link works at every tested RTT.
    for rtt in RTTS_MS:
        feasible = [grid[(rtt, a)] for a in AHEADS if a >= rtt]
        assert feasible and max(feasible) > 10.0, rtt
    # (3) Throughput decays as the control loop gets slower.
    assert grid[(60, 64)] < grid[(0, 0)]
    assert grid[(60, 80)] < grid[(10, 16)]


def test_fig9_control_latency_measured_in_platform(benchmark):
    """The platform's own xid correlator reproduces the netem latency.

    Fig. 9's independent variable is control latency; here the obs
    subsystem measures it from inside the platform: the per-xid
    enqueue->handle delay of the master's ``DlMacCommand`` stream must
    equal the emulated one-way latency (RTT/2) for every feasible
    configuration.
    """

    cases = [(8, 16), (20, 24), (40, 48)]

    def experiment():
        out = {}
        for rtt, ahead in cases:
            with obs.enabled_scope(trace=False) as ob:
                sc = centralized_scheduling(
                    ues_per_enb=1, rtt_ms=rtt, schedule_ahead=ahead,
                    load_factor=1.5)
                sc.sim.run(RUN_TTIS)
                lat = ob.correlator.latencies("dl", "DlMacCommand")
                out[(rtt, ahead)] = {
                    "n": len(lat),
                    "p50": ob.correlator.percentile(50, "dl",
                                                    "DlMacCommand"),
                    "p99": ob.correlator.percentile(99, "dl",
                                                    "DlMacCommand"),
                }
        return out

    out = run_once(benchmark, experiment)
    rows = [[f"RTT {rtt} ms / ahead {ahead}", s["n"], s["p50"], s["p99"]]
            for (rtt, ahead), s in out.items()]
    print_table(
        "Fig 9 companion -- DlMacCommand control latency measured by the "
        "xid correlator (expected: one-way = RTT/2 TTIs, no queueing)",
        ["config", "commands", "p50 TTIs", "p99 TTIs"], rows)

    for (rtt, ahead), s in out.items():
        one_way = math.ceil(rtt / 2)
        assert s["n"] > 100, (rtt, ahead)
        # The emulated channel adds exactly its one-way latency: the
        # distribution is degenerate at RTT/2 (deterministic link, no
        # queueing in the emulated transport).
        assert s["p50"] == one_way, (rtt, s)
        assert s["p99"] == one_way, (rtt, s)
