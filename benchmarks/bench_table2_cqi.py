"""Table 2: max TCP throughput and max sustainable DASH bitrate per CQI.

The paper fixes the channel at several CQI values and measures (a) the
maximum achievable TCP throughput of a COTS UE and (b) the maximum
video bitrate a DASH stream can sustain without buffer freezes.  The
finding feeding the MEC application: "the TCP throughput needs to be
greater (even double) than the video bitrate in order to always
maintain a high quality".

This harness regenerates both columns empirically: a saturating TCP
flow for (a); for (b), fixed-bitrate DASH probes run over the TCP model
and the highest freeze-free bitrate is reported.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.lte.enodeb import EnodeB
from repro.lte.phy.channel import FixedCqi
from repro.lte.phy.tbs import capacity_mbps
from repro.lte.ue import Ue
from repro.traffic.dash import AssistedAbr, DashClient, DashVideo
from repro.traffic.tcp import TcpFlow

CQIS = [2, 3, 4, 10]
PAPER_TCP = {2: 1.63, 3: 2.2, 4: 3.3, 10: 15.0}
PAPER_SUSTAINABLE = {2: 1.4, 3: 2.0, 4: 2.9, 10: 7.3}

TCP_RUN_TTIS = 10_000
DASH_RUN_TTIS = 60_000
PROBE_STEP_MBPS = 0.25


def measure_tcp(cqi: int) -> float:
    enb = EnodeB(1)
    ue = Ue("001", FixedCqi(cqi))
    rnti = enb.attach_ue(ue, tti=0)
    flow = TcpFlow(unlimited=True)
    flow.wire(enb, rnti, ue)
    for t in range(TCP_RUN_TTIS):
        flow.tick(t)
        enb.tick(t)
    return flow.delivered_bytes * 8 / (TCP_RUN_TTIS * 1000)


def stream_is_sustainable(cqi: int, bitrate_mbps: float) -> bool:
    enb = EnodeB(1)
    ue = Ue("001", FixedCqi(cqi))
    rnti = enb.attach_ue(ue, tti=0)
    flow = TcpFlow()
    flow.wire(enb, rnti, ue)
    abr = AssistedAbr()
    abr.set_target(bitrate_mbps)
    video = DashVideo([bitrate_mbps], segment_duration_s=2.0,
                      vbr_peak_factor=1.3, seed=3)
    client = DashClient(video, flow, abr, buffer_cap_s=20.0, start_tti=100)
    for t in range(DASH_RUN_TTIS):
        flow.tick(t)
        client.tick(t)
        enb.tick(t)
    return client.started and client.total_freeze_ms() == 0


def max_sustainable(cqi: int, tcp_mbps: float) -> float:
    """Highest freeze-free bitrate, probed upward in 0.25 Mb/s steps."""
    best = 0.0
    bitrate = PROBE_STEP_MBPS
    while bitrate <= tcp_mbps * 1.1:
        if stream_is_sustainable(cqi, bitrate):
            best = bitrate
            bitrate += PROBE_STEP_MBPS
        else:
            break
    return best


def test_table2_cqi_throughput_and_bitrate(benchmark):
    def experiment():
        out = {}
        for cqi in CQIS:
            tcp = measure_tcp(cqi)
            sustainable = max_sustainable(cqi, tcp)
            out[cqi] = (tcp, sustainable)
        return out

    out = run_once(benchmark, experiment)
    rows = []
    for cqi in CQIS:
        tcp, sustainable = out[cqi]
        rows.append([cqi, tcp, PAPER_TCP[cqi], sustainable,
                     PAPER_SUSTAINABLE[cqi], capacity_mbps(cqi, 50)])
    print_table(
        "Table 2 -- per-CQI TCP throughput and max sustainable bitrate",
        ["CQI", "TCP Mb/s", "paper TCP", "sustainable Mb/s",
         "paper sustainable", "UDP capacity"], rows)

    # Shape: both columns strictly increase with CQI; sustainable is
    # below TCP throughput at every CQI; the CQI10/CQI2 ratio matches
    # the paper's order (~9x).
    tcps = [out[c][0] for c in CQIS]
    sus = [out[c][1] for c in CQIS]
    assert tcps == sorted(tcps)
    assert sus == sorted(sus)
    for c in CQIS:
        assert 0 < out[c][1] <= out[c][0]
    assert 5.0 < out[10][0] / out[2][0] < 15.0
