"""Control-plane resilience: goodput through a master partition.

The paper's separation-of-concerns argument (Section 4): an eNodeB
keeps operating through delegated local control even when the agent's
channel to the master dies.  We run the Section 5 worst case --
centralized per-TTI scheduling -- and cut the master link of one agent
for TTIs 2000-4000.  The agent's connection supervisor must detect the
silence, swap the remote scheduling stubs for local fallbacks (no
master round trip: the VSFs are already in the cache), then reconnect
with capped exponential backoff once the partition heals; the master
must walk the agent through ACTIVE -> STALE (-> DEAD) -> ACTIVE and
resynchronize configuration on reattach.

The headline number: aggregate UE goodput during the partition stays
within 20% of the fault-free baseline's, and recovers after the heal.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import print_table, run_once

from repro.core.agent.connection import ConnectionState
from repro.core.controller.rib import AgentLiveness
from repro.sim.metrics import Probe, Series
from repro.sim.scenarios import CentralizedScenario, FaultSpec, \
    partitioned_centralized

RUN_TTIS = 8000
PARTITION = (2000, 4000)
PROBE_PERIOD = 100

# Measurement windows (steady state before / during / after the fault).
PRE_WINDOW = (1000, 2000)
FAULT_WINDOW = PARTITION
POST_WINDOW = (5000, 7900)


def build(faulted: bool) -> CentralizedScenario:
    fault = FaultSpec(partitions=[PARTITION]) if faulted else None
    return partitioned_centralized(ues_per_enb=10, cqi=12, rtt_ms=4.0,
                                   schedule_ahead=8, load_factor=1.2,
                                   fault=fault)


def run(faulted: bool) -> Dict:
    sc = build(faulted)
    ues = sc.ues_per_enb[0]
    probe = Probe(sc.sim.clock, period_ttis=PROBE_PERIOD)
    rx = probe.watch("rx_bytes",
                     lambda tti: sum(u.rx_bytes_total for u in ues))
    sc.sim.run(RUN_TTIS)
    agent = sc.agents[0]
    master = sc.sim.master
    node = master.rib.agent(agent.agent_id)
    return {
        "rx": rx,
        "supervisor": agent.connection,
        "active_vsf": agent.mac.active_name("dl_scheduling"),
        "liveness": node.liveness,
        "liveness_history": list(node.liveness_history),
        "reattaches": master.agent_reattaches,
    }


def window_goodput(rx: Series, start: int, end: int) -> float:
    """Aggregate goodput (Mb/s) between two sampled TTIs."""
    at = dict(rx.samples)
    return (at[end] - at[start]) * 8 / ((end - start) * 1000.0)


def test_resilience_partition(benchmark):
    def experiment():
        return {"baseline": run(faulted=False), "faulted": run(faulted=True)}

    out = run_once(benchmark, experiment)
    base, hurt = out["baseline"], out["faulted"]

    rows: List[List] = []
    for label, r in (("baseline", base), ("partitioned", hurt)):
        sup = r["supervisor"].stats
        rows.append([
            label,
            window_goodput(r["rx"], *PRE_WINDOW),
            window_goodput(r["rx"], *FAULT_WINDOW),
            window_goodput(r["rx"], *POST_WINDOW),
            sup.disconnects, sup.reconnects, sup.reconnect_attempts,
            r["active_vsf"], r["liveness"].value,
        ])
    print_table(
        f"Resilience -- aggregate goodput (Mb/s) around a master "
        f"partition at TTIs {PARTITION[0]}-{PARTITION[1]} "
        "(claim: local fallback keeps the cell within 20% of baseline)",
        ["config", "pre", "partition", "post-heal",
         "disc", "reconn", "probes", "dl vsf", "rib"],
        rows)

    base_fault = window_goodput(base["rx"], *FAULT_WINDOW)
    hurt_fault = window_goodput(hurt["rx"], *FAULT_WINDOW)
    hurt_post = window_goodput(hurt["rx"], *POST_WINDOW)
    base_post = window_goodput(base["rx"], *POST_WINDOW)

    # (1) The baseline itself is healthy and undisturbed.
    assert base["supervisor"].stats.disconnects == 0
    assert base_fault > 0

    # (2) Local fallback holds goodput within 20% of the no-fault run
    # during the partition, and it recovers after the heal.
    assert hurt_fault >= 0.8 * base_fault, (hurt_fault, base_fault)
    assert hurt_post >= 0.9 * base_post, (hurt_post, base_post)

    # (3) The supervisor went through the full disconnect/reconnect
    # cycle: fallback engaged, backoff probes sent, remote control
    # restored once the master answered again.
    sup = hurt["supervisor"]
    assert sup.stats.disconnects >= 1
    assert sup.stats.reconnects >= 1
    assert sup.stats.reconnect_attempts >= 1
    assert sup.state is ConnectionState.CONNECTED
    assert hurt["active_vsf"] == "remote_stub"

    # (4) The master saw the same story in the RIB: ACTIVE -> STALE
    # (-> DEAD) -> ACTIVE, with a configuration resync on reattach.
    states = [s for _, s in hurt["liveness_history"]]
    assert AgentLiveness.STALE in states
    assert hurt["liveness"] is AgentLiveness.ACTIVE
    i_stale = states.index(AgentLiveness.STALE)
    assert AgentLiveness.ACTIVE in states[i_stale:]
    if AgentLiveness.DEAD in states:
        assert hurt["reattaches"] >= 1
