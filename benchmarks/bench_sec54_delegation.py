"""Section 5.4: control delegation performance.

The paper pushes an equivalent local scheduler to the agent as a VSF
(over the FlexRAN protocol), then swaps between the local and the
remote (centralized) scheduler at runtime via policy reconfiguration,
down to a 1 ms swap period.  Findings: throughput stays at the 25 Mb/s
line regardless of swap frequency (service continuity), the code is
pushed only once, and the VSF load time is ~100 ns.
"""

from __future__ import annotations

import statistics

from conftest import print_table, run_once

from repro.core.policy import build_policy
from repro.net.clock import Phase
from repro.sim.scenarios import centralized_scheduling

RUN_TTIS = 4000
SWAP_PERIODS = [1000, 100, 10, 1]  # down to per-TTI swapping


def run_with_swaps(period_ttis: int):
    sc = centralized_scheduling(ues_per_enb=1, cqi=15, load_factor=1.4)
    agent = sc.agents[0]
    master = sc.sim.master

    pushed = {"done": False}

    def driver(tti):
        # Push the local scheduler code exactly once, then swap the
        # active VSF between local and remote on the given period.
        if tti == 50 and not pushed["done"]:
            master.northbound.push_vsf(
                agent.agent_id, "mac", "dl_scheduling", "pushed_local_pf",
                "scheduler:proportional_fair")
            pushed["done"] = True
        if tti > 100 and tti % period_ttis == 0:
            phase = (tti // period_ttis) % 2
            behavior = "pushed_local_pf" if phase == 0 else "remote_stub"
            master.northbound.send_policy(agent.agent_id, build_policy(
                "mac", "dl_scheduling", behavior=behavior))

    sc.sim.clock.register(Phase.POST, driver)
    sc.sim.run(RUN_TTIS)
    ue = sc.ues_per_enb[0][0]
    swap_slot = agent.mac._slot("dl_scheduling")
    vsf_blob_pushes = master.northbound.counters.vsf_updates
    return (ue.meter.mean_mbps(RUN_TTIS), swap_slot.swaps,
            vsf_blob_pushes)


def test_sec54_swap_continuity(benchmark):
    def experiment():
        baseline = run_with_swaps(10 ** 9)  # effectively no swapping
        cases = {p: run_with_swaps(p) for p in SWAP_PERIODS}
        return baseline, cases

    baseline, cases = run_once(benchmark, experiment)
    rows = [["no swapping", baseline[0], baseline[1], baseline[2]]]
    for period in SWAP_PERIODS:
        mbps, swaps, pushes = cases[period]
        rows.append([f"swap every {period} ms", mbps, swaps, pushes])
    print_table(
        "Sec 5.4 -- local/remote scheduler swapping "
        "(paper: 25 Mb/s regardless of swap frequency; code pushed once)",
        ["configuration", "throughput Mb/s", "VSF swaps", "code pushes"],
        rows)

    # Service continuity: even per-TTI swapping keeps full throughput.
    for period in SWAP_PERIODS:
        assert cases[period][0] > 0.93 * baseline[0], period
    # The code is pushed to the agent exactly once per run.
    for period in SWAP_PERIODS:
        assert cases[period][2] == 1
    # Per-TTI swapping really swapped thousands of times.
    assert cases[1][1] > 1000


def test_sec54_vsf_load_time(benchmark):
    """VSF load (cache-to-active rebind) latency, paper: ~100 ns."""
    sc = centralized_scheduling(ues_per_enb=1, cqi=15)
    sc.sim.run(200)
    agent = sc.agents[0]
    agent.mac.register_vsf("dl_scheduling", "alt",
                           agent.mac._slot("dl_scheduling").cache["local_pf"])

    names = ["alt", "local_pf"]
    state = {"i": 0}

    def swap():
        state["i"] ^= 1
        agent.mac.activate("dl_scheduling", names[state["i"]])

    benchmark(swap)
    samples = []
    for _ in range(1000):
        swap()
        samples.append(agent.mac._slot("dl_scheduling").last_swap_ns)
    median_ns = statistics.median(samples)
    print(f"\nSec 5.4 -- VSF load time: median {median_ns:.0f} ns "
          "(paper: ~103 ns)")
    assert median_ns < 100_000  # same order of magnitude: sub-0.1 ms
