"""Ablation: control placement under control-channel latency.

DESIGN.md Section 4: the paper argues (Sections 5.3/5.4) that on slow
control channels one should "either use approximation methods like
scheduling ahead of time ... or delegate control to the agents for the
time critical functions".  This ablation sweeps the master--agent RTT
and compares three placements of the downlink scheduler:

* remote      -- centralized, schedule-ahead = RTT + 4 (the minimum
                 viable configuration);
* delegated   -- a proportional-fair VSF pushed to the agent once; the
                 master only monitors;
* local       -- agent-only baseline (no master involvement at all).

Expected shape: delegated == local at every RTT (delegation removes
the latency from the loop entirely), remote degrades with RTT and
carries orders of magnitude more command signaling.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.protocol.messages import Category
from repro.lte.phy.channel import GaussMarkovSinr
from repro.net.clock import Phase
from repro.sim.scenarios import centralized_scheduling
from repro.sim.simulation import Simulation
from repro.lte.ue import Ue
from repro.traffic.generators import CbrSource

RTTS = [0, 20, 40, 60]
RUN_TTIS = 4000


def channel(seed=5):
    return GaussMarkovSinr(22.0, sigma_db=2.0, reversion=0.02, seed=seed)


def run_remote(rtt: int):
    sc = centralized_scheduling(
        ues_per_enb=1, rtt_ms=rtt, schedule_ahead=rtt + 4,
        load_factor=1.5, channel_factory=lambda e, i: channel())
    sc.sim.run(RUN_TTIS)
    conn = sc.sim.connections[sc.agents[0].agent_id]
    commands = conn.channel.downlink.category_mbps(Category.COMMANDS,
                                                   RUN_TTIS)
    return sc.ues_per_enb[0][0].meter.mean_mbps(RUN_TTIS), commands


def run_delegated(rtt: int):
    sim = Simulation(with_master=True)
    enb = sim.add_enb()
    agent = sim.add_agent(enb, rtt_ms=rtt)
    ue = Ue("001", channel())
    sim.add_ue(enb, ue)
    sim.add_downlink_traffic(enb, ue, CbrSource(30.0, start_tti=50))

    def push_once(t):
        if t == 10:
            sim.master.northbound.push_vsf(
                agent.agent_id, "mac", "dl_scheduling", "delegated_pf",
                "scheduler:proportional_fair")
            sim.master.northbound.reconfigure_vsf(
                agent.agent_id, "mac", "dl_scheduling",
                behavior="delegated_pf")
    sim.clock.register(Phase.POST, push_once)
    sim.run(RUN_TTIS)
    conn = sim.connections[agent.agent_id]
    commands = conn.channel.downlink.category_mbps(Category.COMMANDS,
                                                   RUN_TTIS)
    return ue.meter.mean_mbps(RUN_TTIS), commands


def run_local():
    sim = Simulation()
    enb = sim.add_enb()
    sim.add_agent(enb)
    ue = Ue("001", channel())
    sim.add_ue(enb, ue)
    sim.add_downlink_traffic(enb, ue, CbrSource(30.0, start_tti=50))
    sim.run(RUN_TTIS)
    return ue.meter.mean_mbps(RUN_TTIS), 0.0


def test_delegation_vs_latency(benchmark):
    def experiment():
        local = run_local()
        table = {}
        for rtt in RTTS:
            table[rtt] = {
                "remote": run_remote(rtt),
                "delegated": run_delegated(rtt),
            }
        return local, table

    local, table = run_once(benchmark, experiment)
    rows = []
    for rtt in RTTS:
        remote = table[rtt]["remote"]
        delegated = table[rtt]["delegated"]
        rows.append([rtt, remote[0], remote[1], delegated[0],
                     delegated[1], local[0]])
    print_table(
        "Ablation -- scheduler placement vs control-channel RTT "
        "(throughput Mb/s | command signaling Mb/s)",
        ["RTT ms", "remote tput", "remote cmds", "delegated tput",
         "delegated cmds", "local tput"], rows)

    for rtt in RTTS:
        remote_tput, remote_cmds = table[rtt]["remote"]
        delegated_tput, delegated_cmds = table[rtt]["delegated"]
        # Delegation is latency-immune: within a few percent of local.
        assert delegated_tput > 0.95 * local[0], rtt
        # Delegation needs (almost) no command traffic; remote control
        # streams decisions continuously.
        assert delegated_cmds < 0.02
        assert remote_cmds > 10 * max(delegated_cmds, 0.001)
    # Remote control degrades as the loop slows down.
    assert table[60]["remote"][0] < table[0]["remote"][0]
