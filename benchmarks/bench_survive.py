"""Survivability costs: the fault-boundary tax and restart recovery time.

The supervisor wraps every app invocation in a breaker check, a timer
and an exception boundary (:mod:`repro.core.survive.supervisor`).  That
wrapper rides the hot app slot of every TTI, so it must stay cheap: the
budget here is < 5% of the app slot for a healthy multi-app deployment.
This benchmark measures the per-call wrapper cost directly, scales it by
the apps a real cycle runs, and cross-checks with an end-to-end tick
loop with supervision compiled out vs. on.

The second experiment answers the recovery question: after a controller
crash, how many TTIs until the restarted master's RIB matches eNodeB
ground truth again -- restored from a checkpoint vs. a cold restart that
re-learns everything over the protocol.
"""

from __future__ import annotations

from time import perf_counter

from conftest import print_table, run_once

from repro.core.apps.base import App
from repro.core.controller.master import MasterController
from repro.core.survive.snapshot import rib_ground_truth_diff
from repro.core.survive.supervisor import AppSupervisor, SupervisionPolicy
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.sim.simulation import Simulation
from repro.traffic.generators import SaturatingSource

TICK_TTIS = 3000
FAULT_BOUNDARY_BUDGET = 0.05  # < 5% of the app slot
APP_SLOT_MS = 0.8  # the Task Manager's default app share of a 1 ms TTI


class BusyApp(App):
    """A healthy app with a small, deterministic workload."""

    period_ttis = 1

    def __init__(self, name: str, priority: int) -> None:
        self.name = name
        self.priority = priority
        self.acc = 0

    def run(self, tti, nb) -> None:
        self.acc += sum(range(50))


def make_apps(n: int = 4):
    return [BusyApp(f"app{i}", priority=100 - i) for i in range(n)]


def wrapper_cost_ns(iterations: int = 100_000) -> float:
    """Nanoseconds of pure supervision overhead per app call."""
    sup = AppSupervisor(SupervisionPolicy())

    def work() -> None:
        pass

    start = perf_counter()
    for _ in range(iterations):
        work()
    bare = perf_counter() - start
    start = perf_counter()
    for tti in range(iterations):
        sup.call("a", work, tti=tti, deadline_ms=APP_SLOT_MS)
    wrapped = perf_counter() - start
    return max(wrapped - bare, 0.0) / iterations * 1e9


def tick_loop_s(*, supervision: bool) -> float:
    """Wall-clock seconds for TICK_TTIS supervised/unsupervised ticks."""
    master = MasterController(realtime=False, supervision=supervision)
    for app in make_apps():
        master.add_app(app)
    start = perf_counter()
    for tti in range(TICK_TTIS):
        master.tick(tti)
    return perf_counter() - start


def test_fault_boundary_tax(benchmark):
    """Supervising healthy apps costs < 5% of the app slot."""

    def experiment():
        ns_per_call = wrapper_cost_ns()
        n_apps = len(make_apps())
        tax_us_per_tti = ns_per_call * n_apps / 1e3
        tax = tax_us_per_tti / (APP_SLOT_MS * 1e3)
        off = min(tick_loop_s(supervision=False) for _ in range(3))
        on = min(tick_loop_s(supervision=True) for _ in range(3))
        return (ns_per_call, tax_us_per_tti, tax,
                off * 1e6 / TICK_TTIS, on * 1e6 / TICK_TTIS)

    ns_per_call, tax_us, tax, off_us, on_us = run_once(benchmark,
                                                       experiment)
    print_table(
        "Fault-boundary tax (budget: < 5% of the 0.8 ms app slot)",
        ["ns/supervised call", "tax us/TTI (4 apps)", "tax %",
         "us/cycle off", "us/cycle on"],
        [[ns_per_call, tax_us, tax * 100.0, off_us, on_us]])
    assert tax < FAULT_BOUNDARY_BUDGET


def build_checkpointed_sim() -> Simulation:
    master = MasterController(realtime=False, checkpoint_period_ttis=100)
    sim = Simulation(master=master)
    enb = sim.add_enb()
    sim.add_agent(enb)
    for i in range(5):
        ue = Ue(f"00{i:03d}", FixedCqi(12))
        sim.add_ue(enb, ue)
        sim.add_downlink_traffic(enb, ue, SaturatingSource(start_tti=10))
    return sim


def restart_to_converged_ttis(*, restore: bool,
                              max_ttis: int = 2000) -> int:
    """TTIs from restart until the RIB matches eNodeB ground truth."""
    sim = build_checkpointed_sim()
    sim.run(1000)
    sim.restart_master(restore=restore)
    truth = {agent_id: sim.agents[agent_id].enb
             for agent_id in sim.agents}
    for elapsed in range(1, max_ttis + 1):
        sim.run(1)
        if not rib_ground_truth_diff(sim.master.rib, truth):
            return elapsed
    raise AssertionError(f"RIB did not converge in {max_ttis} TTIs")


def test_restart_to_converged(benchmark):
    """Checkpoint restore converges; cold restart re-learns slower."""

    def experiment():
        return (restart_to_converged_ttis(restore=True),
                restart_to_converged_ttis(restore=False))

    warm, cold = run_once(benchmark, experiment)
    print_table(
        "Restart-to-converged RIB (1 eNB, 5 UEs, checkpoints every 100)",
        ["restore mode", "TTIs to ground-truth RIB"],
        [["checkpoint", warm], ["cold (resync only)", cold]])
    assert warm <= cold
    assert cold <= 2000
