"""Fig. 12: RAN sharing and virtualization over FlexRAN.

Two experiments (Section 6.3), both driving the agent-side sliced
scheduler over the FlexRAN protocol:

* Fig. 12a -- dynamic resource allocation: MNO/MVNO fractions start at
  70/30, switch to 40/60, then to 80/20 via live policy
  reconfiguration; per-operator throughput follows the fractions.
* Fig. 12b -- per-operator scheduling policies: the MNO slice runs a
  fair policy (all UEs equal, ~380 kb/s in the paper), the MVNO slice
  a premium/secondary group policy (premium ~450 kb/s, secondary
  <200 kb/s).

Timeline note: the paper's Fig. 12a spans 180 s of wall time; the
reproduction compresses the same three phases into 30 s of simulated
time (the dynamics settle within tens of milliseconds, so the phase
lengths are immaterial).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.apps.monitoring import MonitoringApp
from repro.core.apps.ran_sharing import ShareChange
from repro.sim.metrics import cdf_points
from repro.sim.scenarios import ran_sharing

PHASE_TTIS = 10_000  # one phase of Fig 12a
FIG12B_TTIS = 15_000


def test_fig12a_dynamic_allocation(benchmark):
    def experiment():
        sc = ran_sharing(
            ues_per_operator=5,
            initial_fractions={"mno": 0.7, "mvno": 0.3},
            changes=[
                ShareChange(at_tti=PHASE_TTIS,
                            fractions={"mno": 0.4, "mvno": 0.6}),
                ShareChange(at_tti=2 * PHASE_TTIS,
                            fractions={"mno": 0.8, "mvno": 0.2}),
            ])
        app = MonitoringApp(period_ttis=200, stats_period_ttis=10)
        sc.sim.master.add_app(app)
        sc.sim.run(3 * PHASE_TTIS)

        def op_mbps(operator, start, end):
            return sum(
                app.throughput_mbps(sc.agent.agent_id, u.rnti,
                                    start_tti=start, end_tti=end)
                for u in sc.ues_by_operator[operator])

        phases = []
        for i in range(3):
            start = i * PHASE_TTIS + 2000  # skip the transient
            end = (i + 1) * PHASE_TTIS - 200
            phases.append((op_mbps("mno", start, end),
                           op_mbps("mvno", start, end)))
        return phases

    phases = run_once(benchmark, experiment)
    labels = ["70/30 (start)", "40/60 (@ phase 2)", "80/20 (@ phase 3)"]
    rows = [[label, mno, mvno]
            for label, (mno, mvno) in zip(labels, phases)]
    print_table(
        "Fig 12a -- per-operator throughput under live fraction changes "
        "(paper: MNO ~4.2 -> 2.5 -> 5 Mb/s, MVNO ~1.8 -> 4 -> 1.2 Mb/s)",
        ["phase (MNO/MVNO split)", "MNO Mb/s", "MVNO Mb/s"], rows)

    # Phase 1: MNO over twice MVNO (70/30).
    assert phases[0][0] > 1.8 * phases[0][1]
    # Phase 2: inverted (40/60).
    assert phases[1][1] > phases[1][0]
    # Phase 3: strongly MNO again (80/20).
    assert phases[2][0] > 3.0 * phases[2][1]
    # MVNO throughput rises then falls across the three phases.
    assert phases[1][1] > phases[0][1] > phases[2][1]


def test_fig12b_group_policy_cdf(benchmark):
    def experiment():
        sc = ran_sharing(
            ues_per_operator=15,
            initial_fractions={"mno": 0.5, "mvno": 0.5},
            group_split=(9, 6),
            per_ue_load_mbps=1.0)
        sc.sim.run(FIG12B_TTIS)
        mno = [u.meter.mean_mbps(FIG12B_TTIS) * 1000
               for u in sc.ues_by_operator["mno"]]  # kb/s
        mvno = sc.ues_by_operator["mvno"]
        premium = [u.meter.mean_mbps(FIG12B_TTIS) * 1000 for u in mvno
                   if u.labels.get("group") == "premium"]
        secondary = [u.meter.mean_mbps(FIG12B_TTIS) * 1000 for u in mvno
                     if u.labels.get("group") == "secondary"]
        return mno, premium, secondary

    mno, premium, secondary = run_once(benchmark, experiment)
    rows = []
    for name, values in [("MNO (fair)", mno),
                         ("MVNO premium", premium),
                         ("MVNO secondary", secondary)]:
        rows.append([name, len(values), min(values),
                     sum(values) / len(values), max(values)])
    print_table(
        "Fig 12b -- per-UE throughput by scheduling policy, kb/s "
        "(paper: fair MNO ~380 each; premium ~450; secondary <200)",
        ["group", "UEs", "min", "mean", "max"], rows)
    print("CDF points (MNO fair):",
          [(round(v), round(p, 2)) for v, p in cdf_points(mno)][::5])

    mean = lambda xs: sum(xs) / len(xs)
    # Fair policy: MNO UEs tightly clustered.
    assert (max(mno) - min(mno)) / mean(mno) < 0.25
    # Premium beats fair beats secondary.
    assert mean(premium) > mean(mno) > mean(secondary)
    # Premium/secondary separation is strong, as in the paper's CDF.
    assert mean(premium) > 1.3 * mean(secondary)