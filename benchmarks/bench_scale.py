"""Scale stress bench: 32 agents x 100 UEs/cell, every hot path at once.

This is the headline scenario of the perf regression harness
(``repro perf`` / ``benchmarks/harness.py``): each TTI exercises
context building, scheduling, TBS sizing, statistics encoding/decoding
and RIB application across 32 eNodeBs.  The pytest-benchmark variant
here reports the same per-TTI wall-time distribution inside the
benchmark suite, at a reduced TTI count.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cluster import ClusterConfig, ClusterRuntime, run_cluster
from repro.perf import _percentile, sample_tti_walltime
from repro.sim.chaos import ClusterChaosHarness, WorkerKillAt
from repro.sim.scenarios import large_scale

N_ENBS = 32
UES_PER_ENB = 100
WARMUP_TTIS = 40
RUN_TTIS = 60

CLUSTER_ENBS = 8
CLUSTER_UES_PER_ENB = 25
CLUSTER_TTIS = 300


def run_case():
    sc = large_scale(n_enbs=N_ENBS, ues_per_enb=UES_PER_ENB)
    samples = sorted(sample_tti_walltime(
        sc.sim, warmup_ttis=WARMUP_TTIS, run_ttis=RUN_TTIS))
    delivered = sum(e.counters.dl_delivered_bytes for e in sc.enbs)
    return samples, delivered


def test_scale_per_tti_walltime(benchmark):
    samples, delivered = run_once(benchmark, run_case)
    median = _percentile(samples, 50)
    p95 = _percentile(samples, 95)
    print_table(
        "Scale stress -- per-TTI wall time at 32 agents x 100 UEs/cell "
        "(the regression harness's headline metric; absolute numbers "
        "are machine-dependent, track the trajectory via BENCH_perf.json)",
        ["agents", "UEs", "TTIs", "median us", "p95 us", "DL MB"],
        [[N_ENBS, N_ENBS * UES_PER_ENB, RUN_TTIS, median, p95,
          delivered / 1e6]])

    # The deployment is actually doing work: traffic flows end-to-end.
    assert delivered > 0
    # Sanity on the distribution shape, not on machine speed.
    assert 0 < median <= p95


def run_cluster_case():
    """The same deployment shape, sharded over 2 TCP worker processes."""
    config = ClusterConfig(
        workers=2, n_enbs=CLUSTER_ENBS, ues_per_enb=CLUSTER_UES_PER_ENB,
        total_ttis=CLUSTER_TTIS, window=32)
    return run_cluster(config)


def test_scale_cluster_per_tti_walltime(benchmark):
    report = run_once(benchmark, run_cluster_case)
    samples = sorted(report.fleet_samples_us) or [report.us_per_tti]
    print_table(
        "Sharded scale -- fleet us/TTI at 8 agents x 25 UEs/cell over "
        "2 worker processes (real TCP transport; speedup numbers come "
        "from `repro cluster --sweep`, which needs >= 2 cores to mean "
        "anything)",
        ["workers", "agents", "UEs", "TTIs", "median us", "p95 us",
         "max lead"],
        [[report.workers, report.rib_agents, report.rib_ues,
          report.total_ttis, _percentile(samples, 50),
          _percentile(samples, 95), report.max_lead_ttis]])

    # The master's cross-shard RIB converged to the full deployment.
    assert report.rib_agents == CLUSTER_ENBS
    assert report.rib_ues == CLUSTER_ENBS * CLUSTER_UES_PER_ENB
    # The credit scheme bounded shard skew to the window.
    assert report.max_lead_ttis <= 32


def run_respawn_case():
    """SIGKILL one worker mid-run; time the supervisor's recovery."""
    config = ClusterConfig(
        workers=2, n_enbs=CLUSTER_ENBS, ues_per_enb=CLUSTER_UES_PER_ENB,
        total_ttis=CLUSTER_TTIS, window=32, respawn_backoff_s=0.01)
    with ClusterRuntime(config).start() as runtime:
        harness = ClusterChaosHarness(
            [WorkerKillAt(CLUSTER_TTIS // 3, 1)], max_respawns=1)
        runtime.attach_chaos(harness)
        report = runtime.run()
        chaos = harness.check(runtime, report)
    return report, chaos


def test_scale_cluster_respawn_recovery(benchmark):
    report, chaos = run_once(benchmark, run_respawn_case)
    latency_ms = [s * 1e3 for s in report.respawn_latency_s]
    print_table(
        "Sharded scale -- respawn recovery: one worker SIGKILLed a "
        "third of the way in; the supervisor's snapshot handoff must "
        "put the fleet back on the air (latency = detect-to-respawned, "
        "excluding the replacement's rebuild)",
        ["workers", "TTIs", "respawns", "respawn ms", "degraded",
         "wall s"],
        [[report.workers, report.total_ttis, report.respawns,
          _percentile(sorted(latency_ms), 50) if latency_ms else 0.0,
          len(report.degraded_shards), report.wall_s]])

    # Self-healing, not degradation: one respawn, full census.
    assert report.respawns == 1
    assert report.degraded_shards == []
    assert report.rib_agents == CLUSTER_ENBS
    assert report.rib_ues == CLUSTER_ENBS * CLUSTER_UES_PER_ENB
    assert chaos.ok, [v.detail for v in chaos.violations]
