"""Scale stress bench: 32 agents x 100 UEs/cell, every hot path at once.

This is the headline scenario of the perf regression harness
(``repro perf`` / ``benchmarks/harness.py``): each TTI exercises
context building, scheduling, TBS sizing, statistics encoding/decoding
and RIB application across 32 eNodeBs.  The pytest-benchmark variant
here reports the same per-TTI wall-time distribution inside the
benchmark suite, at a reduced TTI count.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.perf import _percentile, sample_tti_walltime
from repro.sim.scenarios import large_scale

N_ENBS = 32
UES_PER_ENB = 100
WARMUP_TTIS = 40
RUN_TTIS = 60


def run_case():
    sc = large_scale(n_enbs=N_ENBS, ues_per_enb=UES_PER_ENB)
    samples = sorted(sample_tti_walltime(
        sc.sim, warmup_ttis=WARMUP_TTIS, run_ttis=RUN_TTIS))
    delivered = sum(e.counters.dl_delivered_bytes for e in sc.enbs)
    return samples, delivered


def test_scale_per_tti_walltime(benchmark):
    samples, delivered = run_once(benchmark, run_case)
    median = _percentile(samples, 50)
    p95 = _percentile(samples, 95)
    print_table(
        "Scale stress -- per-TTI wall time at 32 agents x 100 UEs/cell "
        "(the regression harness's headline metric; absolute numbers "
        "are machine-dependent, track the trajectory via BENCH_perf.json)",
        ["agents", "UEs", "TTIs", "median us", "p95 us", "DL MB"],
        [[N_ENBS, N_ENBS * UES_PER_ENB, RUN_TTIS, median, p95,
          delivered / 1e6]])

    # The deployment is actually doing work: traffic flows end-to-end.
    assert delivered > 0
    # Sanity on the distribution shape, not on machine speed.
    assert 0 < median <= p95
