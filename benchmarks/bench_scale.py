"""Scale stress bench: 32 agents x 100 UEs/cell, every hot path at once.

This is the headline scenario of the perf regression harness
(``repro perf`` / ``benchmarks/harness.py``): each TTI exercises
context building, scheduling, TBS sizing, statistics encoding/decoding
and RIB application across 32 eNodeBs.  The pytest-benchmark variant
here reports the same per-TTI wall-time distribution inside the
benchmark suite, at a reduced TTI count.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cluster import ClusterConfig, run_cluster
from repro.perf import _percentile, sample_tti_walltime
from repro.sim.scenarios import large_scale

N_ENBS = 32
UES_PER_ENB = 100
WARMUP_TTIS = 40
RUN_TTIS = 60

CLUSTER_ENBS = 8
CLUSTER_UES_PER_ENB = 25
CLUSTER_TTIS = 300


def run_case():
    sc = large_scale(n_enbs=N_ENBS, ues_per_enb=UES_PER_ENB)
    samples = sorted(sample_tti_walltime(
        sc.sim, warmup_ttis=WARMUP_TTIS, run_ttis=RUN_TTIS))
    delivered = sum(e.counters.dl_delivered_bytes for e in sc.enbs)
    return samples, delivered


def test_scale_per_tti_walltime(benchmark):
    samples, delivered = run_once(benchmark, run_case)
    median = _percentile(samples, 50)
    p95 = _percentile(samples, 95)
    print_table(
        "Scale stress -- per-TTI wall time at 32 agents x 100 UEs/cell "
        "(the regression harness's headline metric; absolute numbers "
        "are machine-dependent, track the trajectory via BENCH_perf.json)",
        ["agents", "UEs", "TTIs", "median us", "p95 us", "DL MB"],
        [[N_ENBS, N_ENBS * UES_PER_ENB, RUN_TTIS, median, p95,
          delivered / 1e6]])

    # The deployment is actually doing work: traffic flows end-to-end.
    assert delivered > 0
    # Sanity on the distribution shape, not on machine speed.
    assert 0 < median <= p95


def run_cluster_case():
    """The same deployment shape, sharded over 2 TCP worker processes."""
    config = ClusterConfig(
        workers=2, n_enbs=CLUSTER_ENBS, ues_per_enb=CLUSTER_UES_PER_ENB,
        total_ttis=CLUSTER_TTIS, window=32)
    return run_cluster(config)


def test_scale_cluster_per_tti_walltime(benchmark):
    report = run_once(benchmark, run_cluster_case)
    samples = sorted(report.fleet_samples_us) or [report.us_per_tti]
    print_table(
        "Sharded scale -- fleet us/TTI at 8 agents x 25 UEs/cell over "
        "2 worker processes (real TCP transport; speedup numbers come "
        "from `repro cluster --sweep`, which needs >= 2 cores to mean "
        "anything)",
        ["workers", "agents", "UEs", "TTIs", "median us", "p95 us",
         "max lead"],
        [[report.workers, report.rib_agents, report.rib_ues,
          report.total_ttis, _percentile(samples, 50),
          _percentile(samples, 95), report.max_lead_ttis]])

    # The master's cross-shard RIB converged to the full deployment.
    assert report.rib_agents == CLUSTER_ENBS
    assert report.rib_ues == CLUSTER_ENBS * CLUSTER_UES_PER_ENB
    # The credit scheme bounded shard skew to the window.
    assert report.max_lead_ttis <= 32
