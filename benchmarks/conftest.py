"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper
(see DESIGN.md's experiment index).  Helpers here render the regenerated
rows/series in a uniform format so `pytest benchmarks/ --benchmark-only`
output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

collect_ignore_glob: List[str] = []


def fmt_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    """Render one reproduced table/figure as an aligned text table."""
    rows = [[fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    print(line)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
