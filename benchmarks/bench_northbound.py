"""Northbound fan-out bench: 1000+ concurrent subscribers, TTI budget.

Two promises of the service plane (docs/NORTHBOUND.md), measured:

* **Fan-out scales.**  A thousand concurrent JSONL/SSE stream
  subscribers all receive items while the simulation keeps ticking,
  and the obs-measured publish-to-write fan-out latency (p50/p99) is
  reported per stream kind.
* **The TTI loop doesn't pay for it.**  The scale scenario's per-TTI
  median with the server attached (and live subscribers draining)
  stays within the regression threshold of the recorded
  ``BENCH_perf.json`` baseline measured without any server.

The subscriber swarm is plain asyncio on raw sockets -- the bench
process is its own load generator, so ``RLIMIT_NOFILE`` is raised to
cover the socket pairs.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from conftest import print_table, run_once

from repro import obs
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.nb.server import NorthboundServer
from repro.nb.service import NorthboundService
from repro.perf import (
    DEFAULT_THRESHOLD,
    _percentile,
    load_report,
    sample_tti_walltime,
)
from repro.sim.scenarios import large_scale
from repro.sim.simulation import Simulation

N_SUBSCRIBERS = 1000
ITEMS_PER_SUBSCRIBER = 2
STREAM_PERIOD_TTIS = 20
OPEN_CONCURRENCY = 64  # stay under the listener backlog
BENCH_PERF_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_perf.json")


def _raise_fd_limit(minimum: int = 4096) -> int:
    """1000 client + 1000 server sockets need headroom over the
    default 1024 soft limit."""
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < minimum:
        soft = min(max(minimum, soft), hard if hard > 0 else minimum)
        resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))
    return soft


class TickingSim:
    """Background thread advancing a simulation until stopped."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._drive, daemon=True)

    def _drive(self) -> None:
        while not self._stop.is_set():
            self.sim.run(20)
            time.sleep(0)  # yield so the server thread gets scheduled

    def __enter__(self) -> "TickingSim":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(10.0)


async def _subscriber(host: str, port: int, path: str, sse: bool,
                      gate: asyncio.Semaphore, n_items: int) -> int:
    """One streaming client: connect, read *n_items* data records."""
    async with gate:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
                     .encode("latin-1"))
        await writer.drain()
        await reader.readuntil(b"\r\n\r\n")  # response headers
        got = 0
        while got < n_items:
            line = await asyncio.wait_for(reader.readline(), timeout=60.0)
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            if sse:
                if not line.startswith(b"data: "):
                    continue
                line = line[len(b"data: "):]
            json.loads(line)
            got += 1
        return got
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _swarm(host: str, port: int, cell_ids, n: int) -> list:
    """Open *n* concurrent subscribers across kinds and framings."""
    gate = asyncio.Semaphore(OPEN_CONCURRENCY)
    tasks = []
    for i in range(n):
        sse = i % 2 == 1
        mode = "sse" if sse else "jsonl"
        if i % 4 < 3:  # 3/4 TTI heartbeat streams
            path = (f"/v1/stream/tti?period={STREAM_PERIOD_TTIS}"
                    f"&mode={mode}")
        else:  # 1/4 per-cell telemetry
            agent_id, cell_id = cell_ids[i % len(cell_ids)]
            path = (f"/v1/stream/cell/{agent_id}/{cell_id}"
                    f"?period={STREAM_PERIOD_TTIS}&mode={mode}")
        tasks.append(_subscriber(host, port, path, sse, gate,
                                 ITEMS_PER_SUBSCRIBER))
    return await asyncio.gather(*tasks, return_exceptions=True)


def build_fanout_sim() -> Simulation:
    """A small RAN: the bench stresses fan-out, not the scheduler."""
    sim = Simulation(with_master=True)
    for e in range(4):
        enb = sim.add_enb(seed=e)
        sim.add_agent(enb, rtt_ms=2.0)
        sim.add_ue(enb, Ue(f"90{e:04d}", FixedCqi(12)))
    return sim


def run_fanout_case():
    _raise_fd_limit()
    ob = obs.enable(trace=False)
    sim = build_fanout_sim()
    service = NorthboundService(sim.master)
    service.attach()
    server = NorthboundServer(service)
    host, port = server.start()
    try:
        with TickingSim(sim):
            deadline = time.monotonic() + 10.0
            while not sim.master.rib.agent_ids():
                assert time.monotonic() < deadline, "agents never joined"
                time.sleep(0.01)
            cell_ids = [(a, c)
                        for a in sim.master.rib.agent_ids()
                        for c in sorted(sim.master.rib.agent(a).cells)]
            start = time.perf_counter()
            results = asyncio.run(_swarm(host, port, cell_ids,
                                         N_SUBSCRIBERS))
            elapsed = time.perf_counter() - start
        failures = [r for r in results if isinstance(r, BaseException)]
        assert not failures, f"subscriber errors: {failures[:3]!r}"
        starved = sum(1 for r in results if r < ITEMS_PER_SUBSCRIBER)
        latency = {}
        for kind in ("tti", "cell"):
            h = ob.registry.histogram(f"nb.fanout.latency_ms.{kind}")
            latency[kind] = (h.count, h.percentile(50), h.percentile(99))
        dropped = sum(
            ob.registry.counter(f"nb.fanout.dropped.{kind}").value
            for kind in ("tti", "cell", "events", "ue"))
        return (results, starved, elapsed, latency, dropped,
                sim.now, server.connections_accepted)
    finally:
        server.stop()
        service.detach()
        obs.disable()


def test_thousand_subscriber_fanout(benchmark):
    (results, starved, elapsed, latency, dropped, final_tti,
     accepted) = run_once(benchmark, run_fanout_case)
    delivered = sum(r for r in results if not isinstance(r, BaseException))
    rows = [[kind, count, f"{p50:.3f}", f"{p99:.3f}"]
            for kind, (count, p50, p99) in sorted(latency.items())]
    print_table(
        f"Northbound fan-out -- {N_SUBSCRIBERS} concurrent JSONL/SSE "
        f"subscribers, {delivered} items delivered in {elapsed:.1f}s "
        f"(sim reached TTI {final_tti}, {dropped} drops)",
        ["stream kind", "published", "p50 ms", "p99 ms"], rows)
    assert accepted >= N_SUBSCRIBERS
    assert starved == 0, f"{starved} subscribers starved"
    for kind, (count, _p50, p99) in latency.items():
        assert count > 0, f"no fan-out latency samples for {kind!r}"


# -- TTI budget with the server attached ------------------------------------

SCALE_WARMUP_TTIS = 40
SCALE_BLOCK_TTIS = 15
SCALE_ROUNDS = 16  # rounds of two blocks each; order alternates
SCALE_RUN_TTIS = SCALE_BLOCK_TTIS * SCALE_ROUNDS  # per condition
SCALE_SUBSCRIBERS = 32


def run_scale_case():
    """Fine-interleaved A/B on one warmed-up scale sim.

    Benchmark hosts drift over a run (load, frequency scaling, cgroup
    throttling) on a timescale of seconds, and the drift dwarfs the
    effect under test -- so neither the recorded ``BENCH_perf.json``
    absolute median nor a naive before/after split is a sound control
    (an A/A experiment with before/after halves disagrees by 20%+;
    the same experiment interleaved lands within 2%).  Instead the
    server and its live subscribers stay up for the whole run, and the
    service plane's controller hooks toggle on and off in short
    alternating blocks, flipping the within-round order each round so
    correlated drift cancels between the two pooled conditions.  The
    toggle isolates exactly the per-TTI cost the design promises to
    bound: the event tap, the pump, stream sampling and wake fan-out
    (an idle detached server thread just sleeps in epoll and is
    present in both conditions).
    """
    _raise_fd_limit()
    from repro.nb.client import NorthboundClient

    sc = large_scale(n_enbs=32, ues_per_enb=100)
    sc.sim.run(SCALE_WARMUP_TTIS)
    service = NorthboundService(sc.sim.master)
    server = NorthboundServer(service)
    host, port = server.start()
    client = NorthboundClient(host, port)
    streams = []

    def drain(handle) -> None:
        try:
            for _ in handle:
                pass
        except Exception:
            pass

    plain = []
    attached = []
    try:
        for i in range(SCALE_SUBSCRIBERS):
            handle = client.stream(
                f"/v1/stream/tti?period=50&mode="
                f"{'sse' if i % 2 else 'jsonl'}")
            streams.append(handle)
            threading.Thread(target=drain, args=(handle,),
                             daemon=True).start()

        def block(pool: list) -> None:
            if pool is attached:
                service.attach()
            pool.extend(sample_tti_walltime(
                sc.sim, warmup_ttis=0, run_ttis=SCALE_BLOCK_TTIS))
            if pool is attached:
                service.detach()

        for round_index in range(SCALE_ROUNDS):
            first, second = ((plain, attached) if round_index % 2 == 0
                             else (attached, plain))
            block(first)
            block(second)
    finally:
        for handle in streams:
            try:
                handle.close()
            except Exception:
                pass
        server.stop()
        service.detach()
    return sorted(plain), sorted(attached)


def test_scale_median_with_server_attached(benchmark):
    plain, attached = run_once(benchmark, run_scale_case)
    plain_median = _percentile(plain, 50)
    median = _percentile(attached, 50)
    p95 = _percentile(attached, 95)
    recorded = "none"
    if os.path.exists(BENCH_PERF_PATH):
        entry = load_report(BENCH_PERF_PATH).get("benches", {}).get("scale")
        if entry:
            recorded = f"{entry['median_us']:.0f} us"
    allowed = plain_median * (1.0 + DEFAULT_THRESHOLD)
    print_table(
        "Scale scenario TTI budget with northbound server attached, "
        f"{SCALE_SUBSCRIBERS} live stream subscribers "
        f"(same-run control median {plain_median:.0f} us, recorded "
        f"BENCH_perf.json median {recorded})",
        ["agents", "UEs", "subscribers", "TTIs", "median us", "p95 us",
         "allowed us"],
        [[32, 3200, SCALE_SUBSCRIBERS, SCALE_RUN_TTIS,
          f"{median:.0f}", f"{p95:.0f}", f"{allowed:.0f}"]])
    assert median <= allowed, (
        f"scale median {median:.0f} us with server attached exceeds the "
        f"same-run control {plain_median:.0f} us "
        f"+{DEFAULT_THRESHOLD:.0%}")
