"""Observability overhead: the disabled-mode tax and the enabled-mode cost.

The obs subsystem promises that instrumentation left in the TTI loop is
near-free while disabled: every site costs one module-global read plus
an attribute check (``ob = obs.get(); if ob.enabled:``).  This
benchmark bounds that tax below 5% of the per-TTI budget by measuring
the guard directly and multiplying by the number of guard executions a
real run performs, and then reports what turning everything on
(metrics + spans + xid correlation) actually costs end to end.
"""

from __future__ import annotations

from time import perf_counter

from conftest import print_table, run_once

from repro import obs
from repro.core.protocol.messages import ReportType
from repro.lte.phy.channel import FixedCqi
from repro.lte.ue import Ue
from repro.net.clock import Phase
from repro.sim.simulation import Simulation
from repro.traffic.generators import SaturatingSource

RUN_TTIS = 3000
DISABLED_TAX_BUDGET = 0.05


def build_sim() -> Simulation:
    """The quickstart-shaped workload: agented cell, stats every 10 TTIs."""
    sim = Simulation(with_master=True)
    enb = sim.add_enb()
    agent = sim.add_agent(enb, rtt_ms=2.0)
    ue = Ue("001", FixedCqi(15))
    sim.add_ue(enb, ue)
    sim.add_downlink_traffic(enb, ue, SaturatingSource(start_tti=20))

    def subscribe(tti: int) -> None:
        if tti == 50:
            sim.master.northbound.request_stats(
                agent.agent_id, report_type=ReportType.PERIODIC,
                period_ttis=10)
    sim.clock.register(Phase.POST, subscribe)
    return sim


def timed_run(*, mode: str) -> float:
    """Wall-clock seconds for one RUN_TTIS run in the given obs mode."""
    if mode == "disabled":
        obs.disable()
    elif mode == "metrics":
        obs.enable(trace=False)
    elif mode == "full":
        obs.enable()
    else:
        raise ValueError(mode)
    try:
        sim = build_sim()
        start = perf_counter()
        sim.run(RUN_TTIS)
        return perf_counter() - start
    finally:
        obs.disable()


def guard_cost_ns(iterations: int = 200_000) -> float:
    """Nanoseconds per disabled-mode guard (get + enabled check)."""
    start = perf_counter()
    for _ in range(iterations):
        pass
    empty = perf_counter() - start
    start = perf_counter()
    for _ in range(iterations):
        ob = obs.get()
        if ob.enabled:  # pragma: no cover - disabled during the bench
            raise AssertionError("obs must be disabled here")
    guarded = perf_counter() - start
    return max(guarded - empty, 0.0) / iterations * 1e9


def guard_sites_per_tti() -> float:
    """How many guarded sites one TTI executes, measured from a real run.

    A full-instrumentation run records one trace event per span site
    and four correlator stages per message; sites that check the guard
    but record nothing (null paths, early returns) are covered by a 3x
    safety factor.
    """
    ob = obs.enable()
    try:
        build_sim().run(RUN_TTIS)
        events = len(ob.tracer.events) + ob.tracer.dropped_events
        stages = (4 * len(ob.correlator.completed)
                  + ob.correlator.dropped_messages
                  + ob.correlator.in_flight())
        return 3.0 * (events + stages) / RUN_TTIS
    finally:
        obs.disable()


def test_disabled_mode_tax(benchmark):
    """The guard tax on an uninstrumented-feeling run stays under 5%."""

    def experiment():
        baseline_s = min(timed_run(mode="disabled") for _ in range(3))
        ns_per_guard = guard_cost_ns()
        sites = guard_sites_per_tti()
        baseline_us_per_tti = baseline_s * 1e6 / RUN_TTIS
        tax_us_per_tti = ns_per_guard * sites / 1e3
        tax = tax_us_per_tti / baseline_us_per_tti
        return (baseline_us_per_tti, ns_per_guard, sites,
                tax_us_per_tti, tax)

    baseline, ns_per_guard, sites, tax_us, tax = run_once(benchmark,
                                                          experiment)
    print_table(
        "Observability disabled-mode tax (budget: < 5% of TTI time)",
        ["us/TTI disabled", "ns/guard", "guard sites/TTI",
         "tax us/TTI", "tax %"],
        [[baseline, ns_per_guard, sites, tax_us, tax * 100.0]])
    assert tax < DISABLED_TAX_BUDGET
    assert sites > 0


def test_enabled_mode_cost(benchmark):
    """Report what metrics-only and full tracing cost per TTI."""

    def experiment():
        out = {}
        for mode in ("disabled", "metrics", "full"):
            out[mode] = min(timed_run(mode=mode)
                            for _ in range(2)) * 1e6 / RUN_TTIS
        return out

    out = run_once(benchmark, experiment)
    rows = [[mode, out[mode], out[mode] / out["disabled"]]
            for mode in ("disabled", "metrics", "full")]
    print_table(
        "Observability enabled-mode cost (quickstart workload)",
        ["mode", "us/TTI", "x disabled"], rows)
    # Full tracing is the expensive mode, but still the same order of
    # magnitude as the platform itself -- usable on any benchmark run.
    assert out["full"] < 25 * out["disabled"]
