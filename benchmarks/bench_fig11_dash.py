"""Fig. 11: DASH rate adaptation, default vs FlexRAN-assisted.

Two controlled channel-fluctuation cases (Section 6.2):

* low variability -- a small CQI step around the 2 Mb/s rung with a
  3-level video (1.2 / 2 / 4 Mb/s).  The default player's transport-
  layer estimate never sees the improvement and stays at 1.2 Mb/s;
  the assisted player tracks the channel between 1.2 and 2 Mb/s.
  Neither player freezes.
* high variability -- a drastic CQI step with a 6-level 4K video
  (2.9 ... 19.6 Mb/s).  The default player overshoots past the link
  capacity, congests and freezes repeatedly; the assisted player holds
  a sustainable bitrate with a stable buffer.

Our capacity model is more conservative at low CQI than the authors'
testbed, so the CQI operating points sit one/two levels higher (see
DESIGN.md); the bitrate ladders and behaviours are the paper's.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.sim.scenarios import dash_streaming

RUN_TTIS = 120_000  # 120 s of streaming, as in the paper's plots


def run_case(case: str, assisted: bool):
    sc = dash_streaming(case, assisted=assisted)
    sc.sim.run(RUN_TTIS)
    client = sc.client
    rates = [b for _, b in client.bitrate_series]
    return {
        "rates_used": sorted(set(rates)),
        "mean_bitrate": client.mean_bitrate_mbps(),
        "max_bitrate": max(rates),
        "min_bitrate": min(rates),
        "freezes": client.freeze_count(),
        "freeze_ms": client.total_freeze_ms(),
        "segments": client.segments_completed,
        "buffer_series": client.buffer_series,
    }


def test_fig11a_low_variability(benchmark):
    def experiment():
        return {assisted: run_case("low", assisted)
                for assisted in (False, True)}

    out = run_once(benchmark, experiment)
    rows = []
    for assisted in (False, True):
        r = out[assisted]
        label = "FlexRAN-assisted" if assisted else "default"
        rows.append([label, str(r["rates_used"]), r["mean_bitrate"],
                     r["freezes"], r["freeze_ms"]])
    print_table(
        "Fig 11a -- low-variability DASH (paper: default stuck at "
        "1.2 Mb/s; assisted adapts 1.2<->2.0; no freezes for either)",
        ["player", "bitrates used", "mean Mb/s", "freezes", "freeze ms"],
        rows)

    assert out[False]["rates_used"] == [1.2]
    assert 2.0 in out[True]["rates_used"]
    assert out[True]["mean_bitrate"] > out[False]["mean_bitrate"]
    assert out[False]["freezes"] == 0
    assert out[True]["freezes"] == 0


def test_fig11b_high_variability(benchmark):
    def experiment():
        return {assisted: run_case("high", assisted)
                for assisted in (False, True)}

    out = run_once(benchmark, experiment)
    rows = []
    for assisted in (False, True):
        r = out[assisted]
        label = "FlexRAN-assisted" if assisted else "default"
        rows.append([label, str(r["rates_used"]), r["mean_bitrate"],
                     r["freezes"], r["freeze_ms"], r["segments"]])
    print_table(
        "Fig 11b -- high-variability 4K DASH (paper: default overshoots "
        "to 19.6 Mb/s on a 15 Mb/s link and freezes; assisted holds "
        "7.3 Mb/s with a stable buffer)",
        ["player", "bitrates used", "mean Mb/s", "freezes", "freeze ms",
         "segments"], rows)

    # Default overshoots far beyond the ~16 Mb/s capacity and freezes.
    assert out[False]["max_bitrate"] >= 9.6
    assert out[False]["freezes"] > 0
    # Assisted stays sustainable: zero freezes, more video delivered.
    assert out[True]["freezes"] == 0
    assert out[True]["segments"] > out[False]["segments"]
