"""Ablation: the Task Manager's real-time TTI cycle (DESIGN.md Sec. 4).

The paper's master runs a non-preemptive cycle with an enforced split
between the RIB-updater slot and the application slot, and assigns
priorities so that "a centralized MAC scheduler ... would get a very
high priority, whereas a non time-critical monitoring application
would get a lower priority" (Section 4.3.3).

The ablation deploys a deliberately heavy low-priority application next
to the time-critical centralized scheduler and compares real-time mode
(budget enforced: the heavy app gets deferred, the cycle stays bounded)
against non real-time mode (no enforcement: cycles overrun).
"""

from __future__ import annotations

import time

from conftest import print_table, run_once

from repro.core.apps.base import App
from repro.sim.scenarios import centralized_scheduling

RUN_TTIS = 1500
HEAVY_MS = 0.8  # busy work per run: most of a TTI on its own


class HeavyAnalyticsApp(App):
    """A mid-priority app that burns most of a TTI when it runs."""

    name = "heavy_analytics"
    priority = 50  # below the remote scheduler's 100
    period_ttis = 1

    def __init__(self) -> None:
        self.runs = 0

    def run(self, tti, nb) -> None:
        self.runs += 1
        deadline = time.perf_counter() + HEAVY_MS / 1000.0
        while time.perf_counter() < deadline:
            pass


class BackgroundApp(App):
    """The lowest-priority task: first to be deferred under pressure."""

    name = "background_report"
    priority = 1
    period_ttis = 1

    def __init__(self) -> None:
        self.runs = 0

    def run(self, tti, nb) -> None:
        self.runs += 1


def run_mode(realtime: bool):
    sc = centralized_scheduling(ues_per_enb=4, cqi=12)
    sc.sim.master.task_manager.realtime = realtime
    heavy = HeavyAnalyticsApp()
    background = BackgroundApp()
    sc.sim.master.add_app(heavy)
    sc.sim.master.add_app(background)
    sc.sim.run(RUN_TTIS)
    stats = sc.sim.master.task_manager.stats
    tput = sum(u.meter.mean_mbps(RUN_TTIS) for u in sc.ues_per_enb[0])
    scheduler_runs = sc.sim.master.registry.registration(
        "remote_scheduler").runs
    return {
        "overrun_frac": stats.overruns / stats.cycles,
        "deferred": stats.deferred_total,
        "heavy_runs": heavy.runs,
        "background_runs": background.runs,
        "scheduler_runs": scheduler_runs,
        "mean_cycle_ms": stats.mean_core_ms + stats.mean_app_ms,
        "tput": tput,
    }


def test_realtime_cycle_enforcement(benchmark):
    def experiment():
        return {mode: run_mode(mode) for mode in (True, False)}

    out = run_once(benchmark, experiment)
    rows = []
    for realtime in (True, False):
        r = out[realtime]
        rows.append(["real-time" if realtime else "non real-time",
                     r["mean_cycle_ms"], f"{r['overrun_frac']:.2f}",
                     r["deferred"], r["heavy_runs"], r["background_runs"],
                     r["scheduler_runs"], r["tput"]])
    print_table(
        "Ablation -- Task Manager real-time budget enforcement with a "
        "heavy mid-priority app alongside the centralized scheduler",
        ["mode", "cycle ms", "overrun frac", "deferred runs",
         "heavy runs", "background runs", "scheduler runs",
         "cell tput Mb/s"], rows)

    rt, nrt = out[True], out[False]
    # The high-priority scheduler runs every cycle in both modes: the
    # non-preemptive design never skips the time-critical task.
    assert rt["scheduler_runs"] == nrt["scheduler_runs"] == RUN_TTIS
    # Real-time mode sacrifices the lowest-priority task once the heavy
    # app exhausts the budget; non real-time mode runs everything.
    assert rt["deferred"] > 0.9 * RUN_TTIS
    assert rt["background_runs"] < 0.1 * RUN_TTIS
    assert nrt["background_runs"] == RUN_TTIS
    assert nrt["deferred"] == 0
    # Data-plane performance is unaffected either way (the simulator's
    # causality is TTI-based): the ablation isolates control-plane cost.
    assert rt["tput"] > 0 and nrt["tput"] > 0
