"""Fig. 7: master--agent signaling overhead vs number of UEs.

The paper's worst-case configuration: per-TTI statistics reports,
full TTI-level master-agent synchronization, and a centralized
scheduler pushing decisions every TTI, with uniform downlink UDP
traffic.  Fig. 7a breaks agent-to-master traffic into agent
management / sync / stats reporting (stats dominate, sublinear in
UEs); Fig. 7b shows master-to-agent traffic (commands dominate,
growing with UE count and much smaller in absolute terms).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.protocol.messages import Category
from repro.sim.scenarios import centralized_scheduling

UE_COUNTS = [10, 20, 30, 40, 50]
RUN_TTIS = 2000
WARMUP_TTIS = 200


def run_case(n_ues: int):
    sc = centralized_scheduling(ues_per_enb=n_ues, cqi=12)
    sc.sim.run(WARMUP_TTIS)
    conn = sc.sim.connections[sc.agents[0].agent_id]
    conn.channel.uplink.reset_counters()
    conn.channel.downlink.reset_counters()
    sc.sim.run(RUN_TTIS)
    up = conn.channel.uplink.breakdown_mbps(RUN_TTIS)
    down = conn.channel.downlink.breakdown_mbps(RUN_TTIS)
    return up, down


def test_fig7_signaling_overhead(benchmark):
    def experiment():
        return {n: run_case(n) for n in UE_COUNTS}

    results = run_once(benchmark, experiment)

    up_rows = []
    down_rows = []
    for n in UE_COUNTS:
        up, down = results[n]
        up_rows.append([
            n,
            up.get(Category.AGENT_MANAGEMENT, 0.0),
            up.get(Category.SYNC, 0.0),
            up.get(Category.STATS, 0.0),
            sum(up.values()),
        ])
        down_rows.append([
            n,
            down.get(Category.AGENT_MANAGEMENT, 0.0),
            down.get(Category.COMMANDS, 0.0),
            sum(down.values()),
        ])
    print_table(
        "Fig 7a -- agent-to-master signaling, Mb/s "
        "(paper: ~100 Mb/s at 50 UEs, stats dominate, sublinear)",
        ["UEs", "agent mgmt", "sync", "stats", "total"], up_rows)
    print_table(
        "Fig 7b -- master-to-agent signaling, Mb/s "
        "(paper: <4 Mb/s at 50 UEs, commands dominate, superlinear)",
        ["UEs", "agent mgmt", "commands", "total"], down_rows)

    # Shape assertions against the paper's findings.
    up10, down10 = results[10]
    up50, down50 = results[50]
    # (1) stats reporting dominates the uplink at every scale.
    for n in UE_COUNTS:
        up, _ = results[n]
        assert up[Category.STATS] > up[Category.SYNC]
        assert up[Category.STATS] > up.get(Category.AGENT_MANAGEMENT, 0.0)
    # (2) uplink grows sublinearly: 5x UEs -> well under 5x bytes.
    growth = up50[Category.STATS] / up10[Category.STATS]
    assert 1.2 < growth < 4.0
    # (3) downlink is far smaller than uplink and grows with UEs.
    assert sum(down50.values()) < 0.25 * sum(up50.values())
    assert down50[Category.COMMANDS] > down10[Category.COMMANDS]
    # (4) downlink growth rate is itself increasing (superlinear trend):
    # compare first-half and second-half increments.
    mid = results[30][1][Category.COMMANDS]
    first_half = mid - down10[Category.COMMANDS]
    second_half = down50[Category.COMMANDS] - mid
    assert second_half > 0
