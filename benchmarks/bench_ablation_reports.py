"""Ablation: statistics-report design choices (DESIGN.md Section 4).

Two claims from the paper's Section 5.2.1 are quantified:

* "by setting the periodicity of the MAC reports to 2 TTIs, this
  overhead could be reduced to almost half without any significant
  impact in the system's performance" -- we sweep the reporting period
  for a centralized scheduler and measure both signaling and delivered
  throughput.
* The sublinear signaling growth is attributed to "the aggregation of
  relevant information in the FlexRAN protocol messages" -- we compare
  the wire bytes of one aggregated report against per-UE messages.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.protocol import codec
from repro.core.protocol.messages import Category, StatsReply, UeStatsReport
from repro.sim.scenarios import centralized_scheduling

PERIODS = [1, 2, 5, 10]
RUN_TTIS = 3000
N_UES = 16


def run_period(period: int):
    sc = centralized_scheduling(
        ues_per_enb=N_UES, cqi=12, load_factor=1.2,
        algorithm=None)
    sc.app.stats_period_ttis = period
    sc.sim.run(RUN_TTIS)
    conn = sc.sim.connections[sc.agents[0].agent_id]
    stats_mbps = conn.channel.uplink.category_mbps(Category.STATS, RUN_TTIS)
    tput = sum(u.meter.mean_mbps(RUN_TTIS) for u in sc.ues_per_enb[0])
    return stats_mbps, tput


def test_report_periodicity_tradeoff(benchmark):
    def experiment():
        return {p: run_period(p) for p in PERIODS}

    results = run_once(benchmark, experiment)
    rows = [[p, results[p][0], results[p][1]] for p in PERIODS]
    print_table(
        "Ablation -- MAC report periodicity vs signaling and throughput "
        "(paper: 2-TTI reports halve overhead with no significant "
        "performance impact)",
        ["report period (TTIs)", "stats Mb/s", "cell throughput Mb/s"],
        rows)

    # Halving claim: 2-TTI reporting roughly halves the stats traffic.
    ratio = results[2][0] / results[1][0]
    assert 0.4 < ratio < 0.65
    # No significant performance impact at period 2.
    assert results[2][1] > 0.93 * results[1][1]
    # Very slow reporting eventually does hurt (stale queues/CQI).
    assert results[10][0] < results[1][0] / 5


def _ue_report(rnti: int) -> UeStatsReport:
    return UeStatsReport(
        rnti=rnti, queues={1: 0, 3: 200_000}, wb_cqi=12, wb_cqi_clear=13,
        subband_cqi=[12] * 9, subband_sinr_db_x10=[180] * 9,
        harq_states=[0] * 8, ul_buffer_bytes=1000, power_headroom_db=20,
        rlc_bytes_in=10 ** 7, rlc_bytes_out=10 ** 7,
        pdcp_tx_bytes=10 ** 7, pdcp_rx_bytes=10 ** 7,
        rx_bytes_total=10 ** 8, rrc_state=3)


def test_aggregation_vs_per_ue_messages(benchmark):
    def experiment():
        rows = []
        for n in (1, 10, 25, 50):
            aggregated = codec.encoded_size(StatsReply(
                ue_reports=[_ue_report(70 + i) for i in range(n)]))
            separate = sum(
                codec.encoded_size(StatsReply(ue_reports=[_ue_report(70 + i)]))
                for i in range(n))
            rows.append([n, aggregated, separate,
                         separate / aggregated])
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Ablation -- aggregated list-of-UE reports vs one message per UE "
        "(wire bytes per reporting round)",
        ["UEs", "aggregated B", "per-UE msgs B", "overhead x"], rows)
    # Aggregation always wins, and the advantage grows with UE count.
    factors = [row[3] for row in rows]
    assert all(f >= 1.0 for f in factors)
    assert factors[-1] > factors[0]
