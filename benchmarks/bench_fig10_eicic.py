"""Fig. 10: interference management -- optimized eICIC use case.

One macro cell (3 UEs) and one small cell (1 UE), mutually interfering.
Three coordination modes (Section 6.1):

* uncoordinated -- each eNodeB schedules independently; everyone sees
  interference;
* eICIC -- the macro is muted during 4 ABSs per frame; the small cell
  transmits only during ABSs;
* optimized eICIC -- a centralized FlexRAN application reassigns idle
  ABSs to the macro cell.

Paper findings: optimized eICIC almost doubles the uncoordinated
network throughput and improves ~22% over static eICIC (Fig. 10a); the
small cell's throughput is identical under both eICIC variants, the
gain comes entirely from the macro reclaiming idle ABSs (Fig. 10b).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.sim.scenarios import EICIC_MODES, hetnet_eicic

RUN_TTIS = 20_000
WARMUP_TTIS = 1000


def run_mode(mode: str):
    sc = hetnet_eicic(mode)
    sc.sim.run(RUN_TTIS)
    window = RUN_TTIS - WARMUP_TTIS
    macro = sum((u.rx_bytes_total * 8 / 1000 / RUN_TTIS)
                for u in sc.macro_ues)
    small = sc.small_ue.rx_bytes_total * 8 / 1000 / RUN_TTIS
    return macro, small


def test_fig10_eicic_throughput(benchmark):
    def experiment():
        return {mode: run_mode(mode) for mode in EICIC_MODES}

    results = run_once(benchmark, experiment)
    rows = []
    for mode in EICIC_MODES:
        macro, small = results[mode]
        rows.append([mode, macro, small, macro + small])
    print_table(
        "Fig 10a/10b -- HetNet downlink throughput by coordination mode "
        "(paper: uncoordinated ~3.6, eICIC ~5.7, optimized ~7 Mb/s "
        "network total; small-cell share equal under both eICIC modes)",
        ["mode", "macro Mb/s", "small Mb/s", "network Mb/s"], rows)

    totals = {m: sum(results[m]) for m in EICIC_MODES}
    # Fig 10a orderings and magnitudes.
    assert totals["optimized"] > totals["eicic"] > totals["uncoordinated"]
    assert totals["optimized"] / totals["uncoordinated"] > 1.6
    gain_over_eicic = totals["optimized"] / totals["eicic"]
    assert 1.05 < gain_over_eicic < 1.6
    # Fig 10b: the small cell gains nothing from the optimization (its
    # ABSs are untouched); the macro does.
    small_static = results["eicic"][1]
    small_optimized = results["optimized"][1]
    assert abs(small_optimized - small_static) / small_static < 0.15
    assert results["optimized"][0] > results["eicic"][0] * 1.1
