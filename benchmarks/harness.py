#!/usr/bin/env python
"""Benchmark regression harness CLI (repo-local wrapper).

Runs the curated perf suite and writes a schema-versioned
``BENCH_perf.json`` at the repository root; see ``docs/BENCHMARKS.md``.
Equivalent to ``PYTHONPATH=src python -m repro perf``.

Usage::

    PYTHONPATH=src python benchmarks/harness.py [--quick] [--out PATH]
        [--baseline PATH] [--threshold FRAC] [--bench NAME ...] [--list]

Exits non-zero when ``--baseline`` is given and any bench's median
regresses beyond the threshold.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.perf import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
