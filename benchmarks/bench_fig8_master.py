"""Fig. 8: master controller resources vs number of connected agents.

The paper connects 0-3 agents (16 UEs each, per-TTI reporting) and
measures how much of the master's TTI cycle is spent in applications
vs core components (RIB updater etc.), plus the master's memory
footprint.  Findings: the master is lightweight (a small fraction of
the 1 ms cycle used), core-component time grows with agents (more RIB
updates), and memory grows with the RIB.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.sim.scenarios import centralized_scheduling
from repro.sim.simulation import Simulation

AGENT_COUNTS = [0, 1, 2, 3]
UES_PER_ENB = 16
RUN_TTIS = 2000


def run_case(n_agents: int):
    if n_agents == 0:
        sim = Simulation(with_master=True)
        sim.run(RUN_TTIS)
        master = sim.master
    else:
        sc = centralized_scheduling(n_enbs=n_agents,
                                    ues_per_enb=UES_PER_ENB, cqi=12)
        sc.sim.run(RUN_TTIS)
        master = sc.sim.master
    stats = master.task_manager.stats
    mem_kb = master.rib.memory_footprint_bytes() / 1024
    return (stats.mean_core_ms, stats.mean_app_ms, stats.mean_idle_ms,
            stats.percentile_core_ms(95), stats.percentile_core_ms(99),
            mem_kb)


def test_fig8_master_resources(benchmark):
    def experiment():
        return {n: run_case(n) for n in AGENT_COUNTS}

    results = run_once(benchmark, experiment)
    rows = []
    for n in AGENT_COUNTS:
        core, app, idle, core_p95, core_p99, mem = results[n]
        rows.append([n, app, core, core_p95, core_p99, idle, mem])
    print_table(
        "Fig 8 -- master TTI-cycle utilization and RIB memory "
        "(paper: <=0.3 ms of the 1 ms cycle used; memory 5-9 MB, "
        "both growing with agents.  Note: the paper's master is C++; "
        "this Python build carries a large constant factor, so compare "
        "growth, not absolute milliseconds)",
        ["agents", "apps ms", "core ms", "core p95", "core p99",
         "idle ms", "RIB KiB"], rows)

    # Core-component (RIB updater) time grows with connected agents,
    # and dominates the application time as in the paper's figure.
    assert results[3][0] > results[1][0] > results[0][0]
    for n in (1, 2, 3):
        core, app = results[n][0], results[n][1]
        assert core > app
    # An idle master spends (essentially) the whole cycle idle.
    assert results[0][2] > 0.9
    # Tail cycle time behaves: p99 bounds p95 bounds nothing below the
    # mean, and even the tail stays inside the 1 ms TTI budget's order
    # of magnitude for the loaded cases.
    for n in AGENT_COUNTS:
        core, _, _, core_p95, core_p99, _ = results[n]
        assert core_p99 >= core_p95 >= 0.0
        if n > 0:
            assert core_p95 >= core * 0.5
    # Memory footprint grows with the RIB contents.
    assert results[3][5] > results[1][5] > results[0][5]
