"""Fig. 8: master controller resources vs number of connected agents.

The paper connects 0-3 agents (16 UEs each, per-TTI reporting) and
measures how much of the master's TTI cycle is spent in applications
vs core components (RIB updater etc.), plus the master's memory
footprint.  Findings: the master is lightweight (a small fraction of
the 1 ms cycle used), core-component time grows with agents (more RIB
updates), and memory grows with the RIB.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.sim.scenarios import centralized_scheduling
from repro.sim.simulation import Simulation

AGENT_COUNTS = [0, 1, 2, 3]
UES_PER_ENB = 16
RUN_TTIS = 2000


def run_case(n_agents: int):
    if n_agents == 0:
        sim = Simulation(with_master=True)
        sim.run(RUN_TTIS)
        master = sim.master
    else:
        sc = centralized_scheduling(n_enbs=n_agents,
                                    ues_per_enb=UES_PER_ENB, cqi=12)
        sc.sim.run(RUN_TTIS)
        master = sc.sim.master
    stats = master.task_manager.stats
    mem_kb = master.rib.memory_footprint_bytes() / 1024
    return (stats.mean_core_ms, stats.mean_app_ms, stats.mean_idle_ms,
            mem_kb)


def test_fig8_master_resources(benchmark):
    def experiment():
        return {n: run_case(n) for n in AGENT_COUNTS}

    results = run_once(benchmark, experiment)
    rows = []
    for n in AGENT_COUNTS:
        core, app, idle, mem = results[n]
        rows.append([n, app, core, idle, mem])
    print_table(
        "Fig 8 -- master TTI-cycle utilization and RIB memory "
        "(paper: <=0.3 ms of the 1 ms cycle used; memory 5-9 MB, "
        "both growing with agents.  Note: the paper's master is C++; "
        "this Python build carries a large constant factor, so compare "
        "growth, not absolute milliseconds)",
        ["agents", "apps ms", "core ms", "idle ms", "RIB KiB"], rows)

    # Core-component (RIB updater) time grows with connected agents,
    # and dominates the application time as in the paper's figure.
    assert results[3][0] > results[1][0] > results[0][0]
    for n in (1, 2, 3):
        core, app, _, _ = results[n]
        assert core > app
    # An idle master spends (essentially) the whole cycle idle.
    assert results[0][2] > 0.9
    # Memory footprint grows with the RIB contents.
    assert results[3][3] > results[1][3] > results[0][3]
