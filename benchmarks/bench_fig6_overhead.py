"""Fig. 6: vanilla OAI vs OAI+FlexRAN -- agent overhead and transparency.

Fig. 6a compares the eNodeB's CPU utilization and memory footprint with
and without the FlexRAN agent, idle and with a UE running a speedtest;
Fig. 6b compares the downlink/uplink throughput the UE experiences.
The paper finds a very slight CPU/memory increase and *identical*
throughput ("the communication of the eNodeB with the UE is fully
transparent").

Here "CPU" is the measured per-TTI processing time of the simulated
eNodeB (+agent, +per-TTI statistics reporting toward a master) and
"memory" is the deep object size of the data-plane (+agent) state.
"""

from __future__ import annotations

import sys

import pytest
from conftest import print_table, run_once

from repro import obs
from repro.core.protocol.messages import ReportType
from repro.lte.phy.tbs import capacity_mbps
from repro.sim.scenarios import saturated_cell

RUN_TTIS = 5000


def deep_size(obj, seen=None) -> int:
    seen = seen if seen is not None else set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(deep_size(k, seen) + deep_size(v, seen)
                    for k, v in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_size(i, seen) for i in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_size(vars(obj), seen)
    return size


def run_case(*, with_agent: bool, loaded: bool, uplink: bool = False):
    # CPU time now comes from the observability registry: the eNodeB
    # and agent instrumentation feed per-call histograms
    # (enb.plan_us / enb.transmit_us / agent.tick_us), so this
    # benchmark reads the same telemetry an operator would.
    with obs.enabled_scope(trace=False) as ob:
        sc = saturated_cell(n_ues=1 if loaded else 0,
                            with_agent=with_agent, with_master=with_agent,
                            uplink=uplink)
        if with_agent and sc.sim.master is not None:
            # Default deployment reporting: full stats every TTI.
            def subscribe(t):
                if t == 2:
                    sc.sim.master.northbound.request_stats(
                        sc.agent.agent_id,
                        report_type=ReportType.PERIODIC, period_ttis=1)
            from repro.net.clock import Phase
            sc.sim.clock.register(Phase.POST, subscribe)
        sc.sim.run(RUN_TTIS)
        cpu_us = (ob.registry.histogram("enb.plan_us").sum
                  + ob.registry.histogram("enb.transmit_us").sum) / RUN_TTIS
        if with_agent:
            cpu_us += ob.registry.histogram("agent.tick_us").sum / RUN_TTIS
    mem_kb = deep_size(sc.enb) / 1024
    if with_agent:
        mem_kb += deep_size(sc.agent) / 1024
    dl = sc.ues[0].throughput_mbps(sc.sim.now) if loaded else 0.0
    ul = (sc.enb.counters.ul_delivered_bytes * 8 / (RUN_TTIS * 1000)
          if loaded and uplink else 0.0)
    return cpu_us, mem_kb, dl, ul


def test_fig6a_agent_overhead(benchmark):
    """Fig. 6a: per-TTI processing time and memory, idle and loaded."""

    def experiment():
        rows = []
        results = {}
        for with_agent in (False, True):
            for loaded in (False, True):
                cpu, mem, _, _ = run_case(with_agent=with_agent,
                                          loaded=loaded)
                label = "OAI+FlexRAN" if with_agent else "Vanilla"
                state = "UE+speedtest" if loaded else "idle"
                rows.append([label, state, cpu, mem])
                results[(with_agent, loaded)] = (cpu, mem)
        return rows, results

    rows, results = run_once(benchmark, experiment)
    print_table(
        "Fig 6a -- eNodeB overhead of the FlexRAN agent "
        "(paper: +0.2-0.5% CPU, +30-50 MB over ~1.3 GB)",
        ["setup", "state", "cpu us/TTI", "memory KiB"], rows)
    # Shape: the agent adds overhead, but a modest factor, and load
    # dominates the agent cost.
    vanilla_loaded = results[(False, True)]
    agent_loaded = results[(True, True)]
    assert agent_loaded[0] > vanilla_loaded[0]
    assert agent_loaded[0] < 6 * vanilla_loaded[0]
    assert agent_loaded[1] > vanilla_loaded[1]


def test_fig6b_throughput_transparency(benchmark):
    """Fig. 6b: identical DL/UL throughput with and without the agent."""

    def experiment():
        out = {}
        for with_agent in (False, True):
            _, _, dl, ul = run_case(with_agent=with_agent, loaded=True,
                                    uplink=True)
            out[with_agent] = (dl, ul)
        return out

    out = run_once(benchmark, experiment)
    rows = [["Vanilla", out[False][0], out[False][1]],
            ["OAI+FlexRAN", out[True][0], out[True][1]]]
    print_table(
        "Fig 6b -- UE throughput transparency "
        "(paper: DL ~23, UL ~17 Mb/s, identical for both)",
        ["setup", "downlink Mb/s", "uplink Mb/s"], rows)
    assert out[True][0] == pytest.approx(out[False][0], rel=0.02)
    assert out[True][1] == pytest.approx(out[False][1], rel=0.05)
    assert out[True][0] == pytest.approx(capacity_mbps(15, 50), rel=0.05)
